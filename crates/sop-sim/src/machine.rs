//! The full chip-multiprocessor: cores + NOC + LLC + directory + memory.
//!
//! Transactions follow the §4.2.1 protocol. A core's L1 miss travels as a
//! `Request` to the home LLC bank. The bank either hits (responding after
//! its access latency, possibly after snooping sharers/owners), or misses
//! and fetches the line from the interleaved memory controllers (paying a
//! write-back when the victim was owned). Snoops travel as
//! `SnoopRequest`s to the cores, whose acknowledgements return as
//! `Response`s before the original access completes — the full
//! invalidation/forwarding round trip of an inclusive directory LLC.

use crate::cache::{BankOutcome, LlcBank};
use crate::core::{CoreRequest, SimCore};
use crate::l1::L1Cache;
use crate::memory::{channel_of, MemoryController};
use crate::stats::Histogram;
use sop_fault::{ComponentKind, Fault, FaultMode, FaultPlan};
use sop_noc::slab::{Key, SideTable, Slab};
use sop_noc::{Delivered, DomainPool, MessageClass, NetPar, Network, NocConfig, TopologyKind};
use sop_obs::prof::{Component as HostComponent, PhaseMark, Prof, RegionTimer};
use sop_obs::txn::{Stage, TxnStats, STAGES};
use sop_obs::{EventLog, Registry};
use sop_tech::{CacheGeometry, CoreKind, TechnologyNode};
use sop_workloads::trace::LineAddr;
use sop_workloads::{TraceConfig, Workload, WorkloadProfile};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide count of timed cycles simulated by every [`Machine`] on
/// every thread (warm-up and measurement windows both count; functional
/// warm-up replays accesses, not cycles, and does not).
static CYCLES_SIMULATED: AtomicU64 = AtomicU64::new(0);

/// Total timed cycles this process has simulated so far. The bench
/// suite reads deltas of this around a campaign to report cycles/sec.
pub fn cycles_simulated() -> u64 {
    CYCLES_SIMULATED.load(Ordering::Relaxed)
}

/// Worker-thread count newly built machines arm themselves with (the
/// `--threads` knob). Results are bit-identical at every thread count —
/// see [`Machine::set_threads`] — which is exactly why this is *not*
/// part of any cache identity.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);
/// Process-wide parallel-engine telemetry, accumulated by every machine
/// advancing on its parallel path (see [`par_telemetry`]).
static PAR_EPOCHS: AtomicU64 = AtomicU64::new(0);
static PAR_BARRIER_NS: AtomicU64 = AtomicU64::new(0);
static PAR_ADVANCE_NS: AtomicU64 = AtomicU64::new(0);

/// Sets the worker-thread count future [`Machine`]s arm themselves with
/// (clamped to at least 1; 1 disarms — the sequential path).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The worker-thread count newly built machines arm themselves with.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Process-wide parallel-engine telemetry: `(threads, epochs,
/// barrier_ns, advance_ns)` — the configured thread count, total epoch
/// barriers crossed, total nanoseconds any thread stalled at a barrier,
/// and total wall nanoseconds spent advancing on the parallel path.
/// `barrier_ns / advance_ns` is the epoch-barrier stall fraction the
/// heartbeat surfaces.
pub fn par_telemetry() -> (u64, u64, u64, u64) {
    (
        default_threads() as u64,
        PAR_EPOCHS.load(Ordering::Relaxed),
        PAR_BARRIER_NS.load(Ordering::Relaxed),
        PAR_ADVANCE_NS.load(Ordering::Relaxed),
    )
}

/// Configuration of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Workload to run.
    pub workload: Workload,
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// Cores instantiated (the fabric is built for this count).
    pub cores: u32,
    /// Cores actually running threads (§4.3.3: workloads that only scale
    /// to 16 use the 16 tiles nearest the LLC).
    pub active_cores: u32,
    /// Total LLC capacity in MB.
    pub llc_mb: f64,
    /// On-chip fabric.
    pub noc: NocConfig,
    /// Memory channels.
    pub memory_channels: u32,
    /// Technology node.
    pub node: TechnologyNode,
    /// Trace seed.
    pub seed: u64,
}

impl SimConfig {
    /// The chapter-4 pod: 64 A15-like cores, 8MB LLC, four DDR3 channels
    /// at 32nm (Table 4.1), honouring the workload's scalability limit.
    pub fn pod_64(workload: Workload, topology: TopologyKind) -> Self {
        let profile = WorkloadProfile::of(workload);
        SimConfig {
            workload,
            core_kind: CoreKind::OutOfOrder,
            cores: 64,
            active_cores: profile.scalability.pod_cores.min(64),
            llc_mb: 8.0,
            noc: NocConfig::pod_64(topology),
            memory_channels: 4,
            node: TechnologyNode::N32,
            seed: 42,
        }
    }

    /// A chapter-3 validation configuration (Fig 3.3): `cores` cores and a
    /// 4MB LLC on the given fabric at 40nm.
    pub fn validation(workload: Workload, cores: u32, topology: TopologyKind) -> Self {
        let llc_tiles = match topology {
            TopologyKind::Mesh | TopologyKind::FlattenedButterfly => cores,
            _ => cores.div_ceil(4),
        };
        SimConfig {
            workload,
            core_kind: CoreKind::OutOfOrder,
            cores,
            active_cores: cores,
            llc_mb: 4.0,
            noc: NocConfig {
                topology,
                cores,
                llc_tiles,
                link_bits: 128,
                vc_depth: 5,
                tile_mm: 2.2,
                hub_cycles: 2,
            },
            // Scale channels with the machine so the validation study
            // isolates interconnect and software effects, as the thesis'
            // full-system configurations do.
            memory_channels: cores.div_ceil(8).max(2),
            node: TechnologyNode::N40,
            seed: 42,
        }
    }
}

/// Why a faulted machine stopped simulating. Reported as a structured
/// outcome — never a hang: the quiesce barrier applies faults on an idle
/// fabric and checks reachability immediately, so a request that could
/// never complete is never issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Some surviving core and some live LLC bank can no longer reach
    /// each other across the faulted fabric.
    Partition,
    /// Every LLC bank has failed.
    NoLlc,
    /// Every memory channel has failed.
    NoMemory,
    /// Every active core has failed.
    NoCores,
}

impl HaltReason {
    /// Stable machine-readable key (`degradation` report sections).
    pub fn key(self) -> &'static str {
        match self {
            HaltReason::Partition => "partition",
            HaltReason::NoLlc => "no_llc",
            HaltReason::NoMemory => "no_memory",
            HaltReason::NoCores => "no_cores",
        }
    }

    /// Inverse of [`HaltReason::key`], for cache round-trips.
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "partition" => Some(HaltReason::Partition),
            "no_llc" => Some(HaltReason::NoLlc),
            "no_memory" => Some(HaltReason::NoMemory),
            "no_cores" => Some(HaltReason::NoCores),
            _ => None,
        }
    }
}

/// Live fault-injection state: the not-yet-applied schedule plus the
/// degraded-machine bookkeeping. Boxed behind an `Option` on [`Machine`]
/// — `None` (the empty-plan case) leaves every hot path on its original
/// branch, so fault support costs a fault-free run nothing but a
/// null check.
#[derive(Debug)]
struct FaultState {
    /// Faults not yet applied, ascending by cycle.
    pending: VecDeque<Fault>,
    /// Scheduled ends of intermittent link outages: `(cycle, link id)`,
    /// ascending.
    restores: Vec<(u64, u32)>,
    /// True while draining in-flight work before applying a fault; the
    /// issue phase is frozen so the fabric empties.
    quiescing: bool,
    /// Which threads still execute (indexed like `Machine::cores`).
    online: Vec<bool>,
    /// Which LLC banks still serve lines.
    bank_live: Vec<bool>,
    /// Power-of-two remap over the live banks, once any bank has died:
    /// a line hashes into this table instead of `0..banks`. `None`
    /// while all banks live (mapping identical to fault-free).
    bank_map: Option<Vec<usize>>,
    /// Per-bank access latency (doubled by degradation faults).
    bank_latency: Vec<u64>,
    /// Memory channels still accepting requests, ascending.
    live_channels: Vec<usize>,
    /// Set once the machine can no longer make forward progress.
    halted: Option<HaltReason>,
    /// Cycles spent draining at quiesce barriers.
    quiesce_cycles: u64,
    applied: u64,
    routers_dead: u64,
    routers_degraded: u64,
    links_dead: u64,
    links_degraded: u64,
    links_restored: u64,
    banks_dead: u64,
    banks_degraded: u64,
    channels_dead: u64,
    channels_degraded: u64,
    cores_offline: u64,
    llc_lines_invalidated: u64,
}

impl FaultState {
    /// Publishes the degradation bookkeeping as `sim.fault.*` gauges
    /// (gauges, not counters: these are state snapshots, idempotent
    /// across windows).
    fn export(&self, reg: &mut Registry) {
        reg.gauge_set("sim.fault.applied", self.applied as f64);
        reg.gauge_set("sim.fault.routers.dead", self.routers_dead as f64);
        reg.gauge_set("sim.fault.routers.degraded", self.routers_degraded as f64);
        reg.gauge_set("sim.fault.links.dead", self.links_dead as f64);
        reg.gauge_set("sim.fault.links.degraded", self.links_degraded as f64);
        reg.gauge_set("sim.fault.links.restored", self.links_restored as f64);
        reg.gauge_set("sim.fault.llc_banks.dead", self.banks_dead as f64);
        reg.gauge_set("sim.fault.llc_banks.degraded", self.banks_degraded as f64);
        reg.gauge_set(
            "sim.fault.llc.lines_invalidated",
            self.llc_lines_invalidated as f64,
        );
        reg.gauge_set("sim.fault.mem_channels.dead", self.channels_dead as f64);
        reg.gauge_set(
            "sim.fault.mem_channels.degraded",
            self.channels_degraded as f64,
        );
        reg.gauge_set("sim.fault.cores.offline", self.cores_offline as f64);
        reg.gauge_set(
            "sim.fault.cores.online",
            self.online.iter().filter(|&&o| o).count() as f64,
        );
        reg.gauge_set("sim.fault.quiesce_cycles", self.quiesce_cycles as f64);
        reg.gauge_set(
            "sim.fault.halted",
            if self.halted.is_some() { 1.0 } else { 0.0 },
        );
    }
}

/// Aggregated simulation results over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Measured cycles.
    pub cycles: u64,
    /// Application instructions committed by all cores in the window.
    pub instructions: u64,
    /// LLC accesses in the window.
    pub llc_accesses: u64,
    /// LLC misses in the window.
    pub llc_misses: u64,
    /// Snoop messages sent to cores.
    pub snoops: u64,
    /// Lines transferred from memory.
    pub memory_lines: u64,
    /// Snoop invalidations that found a line in an L1 (the rest were
    /// stale-sharer snoops).
    pub l1_invalidations: u64,
    /// Mean NOC packet latency.
    pub mean_packet_latency: f64,
    /// End-to-end L1-miss round-trip latency distribution (request issue
    /// to response delivery, including bank, directory, and memory time).
    pub request_latency: Histogram,
    /// Flit-hops through routers during the window (for power analysis).
    pub noc_flit_hops: u64,
    /// Flit-millimetres of wire traversed during the window.
    pub noc_flit_mm: f64,
    /// Cores that ran threads.
    pub active_cores: u32,
    /// Why the machine stopped early, if injected faults made forward
    /// progress impossible. Always `None` on fault-free runs.
    pub halted: Option<HaltReason>,
    /// Every named metric of the window: `sim.llc.bank<i>.*`, `sim.l1.*`,
    /// `mem.chan<i>.*`, `noc.*`, `sim.cycles`, `sim.instructions`, and
    /// the `sim.request_latency` histogram. The typed fields above are a
    /// view over this registry; the registry is what reports serialize.
    pub metrics: Registry,
}

impl SimResult {
    /// Aggregate application IPC (the thesis' performance metric, §3.3).
    pub fn aggregate_ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Per-core application IPC.
    pub fn per_core_ipc(&self) -> f64 {
        self.aggregate_ipc() / f64::from(self.active_cores)
    }

    /// Fraction of LLC accesses that triggered at least one snoop-ish
    /// message (Fig 4.3 numerator counts accesses causing a snoop).
    pub fn snoop_fraction(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.snoops as f64 / self.llc_accesses as f64
        }
    }

    /// Off-chip bandwidth in GB/s at `ghz`.
    pub fn offchip_gbps(&self, ghz: f64) -> f64 {
        self.memory_lines as f64 * 64.0 / (self.cycles as f64 / (ghz * 1e9)) / 1e9
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenRequest {
    core: u32,
    line: LineAddr,
    write: bool,
    fetch: bool,
    bank: usize,
    /// Cycle the core issued the request.
    issued_at: u64,
    /// Snoop acknowledgements still outstanding.
    pending_acks: u32,
}

/// What a packet in flight means to the protocol — attached to the
/// network's packet keys through a [`SideTable`], so delivery handling is
/// one array access instead of probing three hash maps.
#[derive(Debug, Clone, Copy)]
enum PacketRole {
    /// A core's request travelling to its home LLC bank.
    Request(Key),
    /// A directory snoop travelling to a sharer/owner core.
    Snoop(Key),
    /// A snoop acknowledgement returning to the directory.
    SnoopAck(Key),
    /// The final data/instruction response returning to the core.
    Data {
        core: u32,
        fetch: bool,
        issued_at: u64,
    },
}

/// Per-transaction causal-tracing state, boxed behind an `Option` like
/// [`FaultState`]: `None` (the default) keeps every hot path on its
/// untraced branch and exports no `sim.txn.*` keys, so an untraced run
/// is byte-identical to one built before tracing existed.
///
/// Transaction ids come from a monotonic issue counter — issue order is
/// already part of the engine's semantics (it decides packet ids), so
/// ids and the `id % sample_every == 0` sampling decision are
/// bit-deterministic and identical between the event-driven and
/// reference engines.
#[derive(Debug, Clone)]
struct TxnTraceState {
    /// Trace every `sample_every`-th transaction (1 = all).
    sample_every: u64,
    /// Transactions issued so far; the next transaction's id.
    issued: u64,
    /// Sampled transactions in flight, keyed by open-request key.
    live: SideTable<TxnLive>,
    /// Sampled transactions whose response is in the NOC, keyed by the
    /// response packet id ([`PacketRole::Data`] carries no request key).
    resp: SideTable<TxnLive>,
    /// Per-stage span histograms for the current window.
    stats: TxnStats,
}

/// One sampled transaction's accumulated hop spans. Spans are staged
/// here and recorded into [`TxnStats`] only at completion, so the
/// exported histograms contain whole transactions exclusively — which
/// makes per-stage sums equal `sim.txn.total`'s sum *exactly*, even for
/// transactions straddling a measurement-window boundary.
#[derive(Debug, Clone, Copy)]
struct TxnLive {
    id: u64,
    /// Cycle of the previous causal hand-off; every hop records
    /// `now - last` and advances it, so spans tile the transaction's
    /// lifetime with no gaps or overlaps.
    last: u64,
    /// Span cycles per stage (NOC stages accumulate across the request
    /// and response packets).
    spans: [u64; STAGES],
    /// Bitmask of stages this transaction actually visited.
    visited: u8,
}

impl TxnLive {
    fn new(id: u64, issued_at: u64) -> Self {
        TxnLive {
            id,
            last: issued_at,
            spans: [0; STAGES],
            visited: 0,
        }
    }

    fn add(&mut self, stage: Stage, span: u64) {
        self.spans[stage as usize] += span;
        self.visited |= 1 << (stage as usize);
    }
}

/// Emits one hop span into the lifecycle event log (when tracing is on)
/// on the owning component's track, tagged with the transaction id.
fn hop_event(
    events: &mut Option<EventLog>,
    stage: Stage,
    id: u64,
    start: u64,
    dur: u64,
    track: u64,
) {
    if let Some(log) = events {
        log.record(sop_obs::Event {
            ts: start,
            dur: Some(dur),
            name: stage.key(),
            cat: "txn.hop",
            track,
            args: vec![("txn", id)],
        });
    }
}

/// A transaction completion event. Ties break on the transaction key:
/// transaction keys are allocated in request-issue order, which is also
/// the order request packet ids used to supply here — so heap pop order
/// is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    due: u64,
    txn: Key,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due).then(other.txn.cmp(&self.txn))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything the functional warm-up outcome depends on — and nothing it
/// does not. Fabric link width, hub latency, and memory-channel count
/// never enter the warm-up loop, so sweep points varying only those share
/// one warmed state.
#[derive(Clone, PartialEq, Eq, Hash)]
struct WarmKey {
    workload: Workload,
    core_kind: CoreKind,
    seed: u64,
    /// `llc_mb` bit pattern (`f64` is not `Hash`; configs hold exact
    /// values, so bit equality is the right equality).
    llc_mb_bits: u64,
    n_banks: usize,
    /// Physical ids of the cores running threads (they feed the
    /// directory's sharer lists during warm-up).
    active: Vec<u32>,
}

/// Warmed banks and trace-advanced cores, captured right after
/// [`Machine::functional_warmup`] resets bank statistics.
struct WarmState {
    banks: Vec<LlcBank>,
    cores: Vec<SimCore>,
}

fn warm_state_bytes(state: &WarmState) -> usize {
    state
        .banks
        .iter()
        .map(LlcBank::approx_heap_bytes)
        .sum::<usize>()
        + state.cores.len() * std::mem::size_of::<SimCore>()
}

/// [`WarmKey`] minus the bank count: what the warm-up *trace* — as
/// opposed to the warmed bank contents — depends on. A mesh point and a
/// crossbar point bank the same LLC differently but draw the very same
/// accesses; this key lets them share the (Zipf-heavy) trace generation
/// and replay only the bank walk.
#[derive(Clone, PartialEq, Eq, Hash)]
struct WarmTraceKey {
    workload: Workload,
    core_kind: CoreKind,
    seed: u64,
    per_core: u64,
    active: Vec<u32>,
}

/// Warm-up accesses per active core — `line` with the write flag packed
/// into bit 63 (instruction/data distinction is irrelevant to warming) —
/// plus the cores as the generation left them (trace streams advanced).
struct WarmTrace {
    accesses: Vec<Vec<u64>>,
    cores: Vec<SimCore>,
}

const WRITE_BIT: u64 = 1 << 63;

fn warm_trace_bytes(trace: &WarmTrace) -> usize {
    trace.accesses.iter().map(|a| a.len() * 8).sum::<usize>()
        + trace.cores.len() * std::mem::size_of::<SimCore>()
}

/// A process-wide memo, FIFO-bounded by approximate byte footprint. Every
/// value stored is a pure function of its key, so sharing entries between
/// machines — and the eviction order — can never change a simulated
/// outcome, only how fast warm-up runs.
struct MemoCache<K, V> {
    map: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
    bytes: usize,
    cap: usize,
    size_of: fn(&V) -> usize,
}

impl<K: Clone + Eq + std::hash::Hash, V> MemoCache<K, V> {
    fn new(cap: usize, size_of: fn(&V) -> usize) -> Self {
        MemoCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            cap,
            size_of,
        }
    }

    fn lookup(&self, key: &K) -> Option<Arc<V>> {
        self.map.get(key).cloned()
    }

    fn store(&mut self, key: K, value: Arc<V>) {
        if self.map.contains_key(&key) {
            // Another worker memoized the identical value concurrently;
            // both copies are bit-identical, so keeping the first is fine.
            return;
        }
        let bytes = (self.size_of)(&value);
        while self.bytes + bytes > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.map.remove(&oldest) {
                self.bytes -= (self.size_of)(&evicted);
            }
        }
        self.bytes += bytes;
        self.order.push_back(key.clone());
        self.map.insert(key, value);
    }
}

/// Sized to hold one full chapter campaign's worth of validation-config
/// warmed states (the fig 3.3 sweep revisits a key ~42 insertions later).
const WARM_STATE_BYTE_CAP: usize = 192 << 20;

/// Traces are revisited at the same distance but are smaller per entry.
const WARM_TRACE_BYTE_CAP: usize = 160 << 20;

fn warm_states() -> &'static Mutex<MemoCache<WarmKey, WarmState>> {
    static CACHE: OnceLock<Mutex<MemoCache<WarmKey, WarmState>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(MemoCache::new(WARM_STATE_BYTE_CAP, warm_state_bytes)))
}

fn warm_traces() -> &'static Mutex<MemoCache<WarmTraceKey, WarmTrace>> {
    static CACHE: OnceLock<Mutex<MemoCache<WarmTraceKey, WarmTrace>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(MemoCache::new(WARM_TRACE_BYTE_CAP, warm_trace_bytes)))
}

/// A runnable machine instance.
#[derive(Debug)]
pub struct Machine {
    cfg: SimConfig,
    net: Network,
    cores: Vec<SimCore>,
    /// Which cores run threads (indices into `cores`).
    active: Vec<u32>,
    banks: Vec<LlcBank>,
    bank_free_at: Vec<u64>,
    bank_latency: u64,
    mcs: Vec<MemoryController>,
    /// Open transactions, from request issue to response injection.
    txns: Slab<OpenRequest>,
    /// Protocol role of every packet in flight, keyed by packet id. The
    /// network's deferred slot reclaim guarantees a delivered packet's
    /// index is not reissued until the next step, after its role entry is
    /// gone — so index-keyed storage cannot alias.
    roles: SideTable<PacketRole>,
    /// Bank pipeline completion events.
    bank_events: BinaryHeap<Scheduled>,
    /// Memory completion events.
    mem_events: BinaryHeap<Scheduled>,
    /// Next cycle each thread's core must be polled (`u64::MAX` while a
    /// core is blocked and only a response delivery can unblock it).
    core_next_poll: Vec<u64>,
    /// Step every cycle and sweep every router, bypassing all event-driven
    /// shortcuts: the reference semantics the fast path must match.
    reference: bool,
    cycle: u64,
    memory_lines: u64,
    request_latency: Histogram,
    /// Per-thread private L1 data caches (coherence state only: snoops
    /// must find real lines, and finite capacity drops stale sharers).
    l1s: Vec<L1Cache>,
    warmed: bool,
    /// Fault-injection state; `None` (always, for an empty plan) keeps
    /// every hot path on its fault-free branch.
    faults: Option<Box<FaultState>>,
    /// Cumulative named metrics across all measurement windows.
    registry: Registry,
    /// Optional transaction-lifecycle trace (off by default: recording
    /// is allocation-free but still costs a branch per protocol step).
    events: Option<EventLog>,
    /// Per-transaction causal tracing; `None` (the default) keeps every
    /// hot path on its untraced branch and exports no `sim.txn.*` keys.
    txn_trace: Option<Box<TxnTraceState>>,
    /// Host-side self-profiling; `None` (the default) keeps every hot
    /// path on its unprofiled branch — no clock reads — and exports no
    /// `prof.*` keys.
    prof: Option<Box<Prof>>,
    /// Deterministic intra-run parallelism; `None` (threads ≤ 1, or a
    /// machine too small to shard) keeps every hot path on the existing
    /// sequential engine with zero new overhead.
    par: Option<Box<ParEngine>>,
}

/// The intra-run parallel engine: a persistent worker pool, the
/// network's lookahead-bounded domain shards, and contiguous per-core
/// poll chunks. Armed by [`Machine::set_threads`].
#[derive(Debug)]
struct ParEngine {
    pool: DomainPool,
    net_par: NetPar,
    threads: usize,
    /// Contiguous `[start, end)` thread ranges polled in parallel.
    chunks: Vec<(usize, usize)>,
    /// Per-chunk deferred-issue buffers, reused across ticks. Requests
    /// are replayed sequentially in ascending thread order, so packet
    /// ids — part of the semantics — match the sequential engine bit
    /// for bit.
    polled: Vec<Vec<(usize, CoreRequest)>>,
    stats: ParStats,
}

/// Window-scoped parallel-engine accounting, exported as `prof.par.*`
/// when profiling is armed and reset at every window boundary.
#[derive(Debug, Default, Clone, Copy)]
struct ParStats {
    epochs: u64,
    barrier_ns: u64,
}

impl Machine {
    /// Builds the machine for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` exceeds `cores`.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.active_cores <= cfg.cores, "more threads than cores");
        let net = Network::new(cfg.noc);
        let profile = WorkloadProfile::of(cfg.workload);
        // Pick the active cores closest to the LLC: the thesis places
        // 16-core workloads on the central mesh tiles and on the core
        // tiles adjacent to the LLC row in NOC-Out (§4.3.3). Rank cores by
        // mean zero-load latency to the LLC endpoints.
        let topo = net.topology();
        let mut ranked: Vec<(u64, u32)> = net
            .core_endpoints()
            .iter()
            .enumerate()
            .map(|(core, &node)| {
                let sum: u64 = net
                    .llc_endpoints()
                    .iter()
                    .map(|&l| {
                        if l == node {
                            0
                        } else {
                            u64::from(topo.zero_load_latency(node, l))
                        }
                    })
                    .sum();
                (sum, core as u32)
            })
            .collect();
        ranked.sort();
        let mut active: Vec<u32> = ranked[..cfg.active_cores as usize]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        active.sort_unstable();
        // Only active cores execute; their trace identities are contiguous
        // regardless of which physical tiles they occupy.
        let cores = (0..cfg.active_cores)
            .map(|thread| {
                SimCore::new(TraceConfig {
                    profile,
                    core_kind: cfg.core_kind,
                    core_id: thread,
                    total_cores: cfg.active_cores.max(1),
                    seed: cfg.seed,
                })
            })
            .collect();
        // Two banks per NOC-Out LLC tile (Table 4.1), one per tile/endpoint
        // elsewhere.
        let llc_endpoints = net.llc_endpoints().len();
        let banks_per_endpoint = if cfg.noc.topology == TopologyKind::NocOut {
            2
        } else {
            1
        };
        let n_banks = llc_endpoints * banks_per_endpoint;
        let bank_bytes = (cfg.llc_mb * 1024.0 * 1024.0 / n_banks as f64) as u64;
        let banks = (0..n_banks).map(|_| LlcBank::new(bank_bytes, 16)).collect();
        let bank_latency =
            u64::from(CacheGeometry::new().bank_latency_cycles(cfg.llc_mb / n_banks as f64));
        let mcs = (0..cfg.memory_channels)
            .map(|_| match cfg.node.memory_gen() {
                sop_tech::MemoryGen::Ddr3 => MemoryController::ddr3_at_2ghz(),
                sop_tech::MemoryGen::Ddr4 => MemoryController::ddr4_at_2ghz(),
            })
            .collect();
        let mut machine = Machine {
            cfg,
            net,
            cores,
            active,
            banks,
            bank_free_at: vec![0; n_banks],
            bank_latency,
            mcs,
            txns: Slab::new(),
            roles: SideTable::new(),
            bank_events: BinaryHeap::new(),
            mem_events: BinaryHeap::new(),
            core_next_poll: vec![0; cfg.active_cores as usize],
            reference: false,
            cycle: 0,
            memory_lines: 0,
            request_latency: Histogram::new(),
            l1s: {
                let ua = cfg.core_kind.microarch();
                (0..cfg.active_cores)
                    .map(|_| L1Cache::new(ua.l1d_kb, 2))
                    .collect()
            },
            warmed: false,
            faults: None,
            registry: Registry::new(),
            events: None,
            txn_trace: None,
            prof: None,
            par: None,
        };
        let threads = default_threads();
        if threads > 1 {
            machine.set_threads(threads);
        }
        machine
    }

    /// Arms (threads ≥ 2) or disarms (threads ≤ 1) the deterministic
    /// intra-run parallel engine: the NOC is sharded into
    /// lookahead-bounded domains swept by a persistent worker pool, and
    /// core polling fans out over contiguous thread chunks, with every
    /// cross-thread effect replayed at the per-tick barrier in the
    /// sequential engine's canonical order. Results are **bit-identical
    /// to the sequential engine** at every thread count. Machines too
    /// small to shard stay sequential with zero new overhead; faulted
    /// and transaction-traced runs take the sequential path regardless
    /// (quiesce barriers and packet tracing are inherently serial).
    pub fn set_threads(&mut self, threads: usize) {
        if threads <= 1 {
            self.par = None;
            return;
        }
        let Some(net_par) = self.net.make_par(threads) else {
            self.par = None;
            return;
        };
        let n = self.cores.len();
        let parts = threads.min(n.max(1));
        let base = n / parts;
        let extra = n % parts;
        let mut chunks = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            chunks.push((start, start + len));
            start += len;
        }
        self.par = Some(Box::new(ParEngine {
            pool: DomainPool::new(threads),
            net_par,
            threads,
            polled: vec![Vec::new(); chunks.len()],
            chunks,
            stats: ParStats::default(),
        }));
    }

    /// Whether the parallel engine is armed (it refuses machines too
    /// small to shard even when threads were requested).
    pub fn par_active(&self) -> bool {
        self.par.is_some()
    }

    /// The armed worker-thread count (1 on the sequential path).
    pub fn threads(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.threads)
    }

    /// Arms a deterministic fault schedule. Faults are applied at their
    /// cycles behind quiesce barriers (issue freezes, in-flight work
    /// drains, the fault lands on an idle fabric), which keeps the run
    /// bit-deterministic and identical between the event-driven and
    /// reference engines. An empty plan stores nothing: the machine is
    /// byte-identical to one that never saw a plan.
    ///
    /// Component ids: routers/links use NOC node ids ([`sop_fault::
    /// link_id`] packs links), LLC banks and memory channels their
    /// machine indices, cores *physical* core ids (faults on inactive
    /// cores are no-ops).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            self.faults = None;
            return;
        }
        self.faults = Some(Box::new(FaultState {
            pending: plan.faults().iter().copied().collect(),
            restores: Vec::new(),
            quiescing: false,
            online: vec![true; self.cores.len()],
            bank_live: vec![true; self.banks.len()],
            bank_map: None,
            bank_latency: vec![self.bank_latency; self.banks.len()],
            live_channels: (0..self.mcs.len()).collect(),
            halted: None,
            quiesce_cycles: 0,
            applied: 0,
            routers_dead: 0,
            routers_degraded: 0,
            links_dead: 0,
            links_degraded: 0,
            links_restored: 0,
            banks_dead: 0,
            banks_degraded: 0,
            channels_dead: 0,
            channels_degraded: 0,
            cores_offline: 0,
            llc_lines_invalidated: 0,
        }));
    }

    /// Why the machine stopped early, if it did.
    pub fn halted(&self) -> Option<HaltReason> {
        self.faults.as_ref().and_then(|f| f.halted)
    }

    /// Number of NOC routers in the fabric — the victim universe for
    /// seeded router-death plans ([`FaultPlan::seeded_router_deaths`]).
    pub fn router_count(&self) -> u32 {
        self.net.topology().len() as u32
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Turns on transaction-lifecycle tracing into a ring buffer of
    /// `capacity` events (issue → LLC → snoop → memory → retire). Export
    /// the result with [`event_log`](Self::event_log) and
    /// [`sop_obs::EventLog::to_chrome_trace`].
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.events = Some(EventLog::new(capacity));
    }

    /// The event log, if tracing was enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Arms per-transaction causal tracing: every `sample_every`-th L1
    /// miss (deterministically, by issue order) has each hop of its life
    /// timed — NOC inject/route/eject, bank queue/service, directory
    /// indirection, memory channel queue/service — and aggregated into
    /// `sim.txn.*` histograms in [`metrics`](Self::metrics). With
    /// lifecycle tracing also on ([`enable_tracing`](Self::enable_tracing)),
    /// each hop additionally lands in the event log on its component's
    /// track. Tracing observes the simulation without perturbing it:
    /// every other metric is bit-identical to an untraced run.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn enable_txn_tracing(&mut self, sample_every: u64) {
        assert!(sample_every > 0, "sample period must be at least 1");
        self.net.enable_packet_tracing();
        self.txn_trace = Some(Box::new(TxnTraceState {
            sample_every,
            issued: 0,
            live: SideTable::new(),
            resp: SideTable::new(),
            stats: TxnStats::new(),
        }));
    }

    /// Per-stage transaction span histograms for the current window, if
    /// tracing is armed.
    pub fn txn_stats(&self) -> Option<&TxnStats> {
        self.txn_trace.as_ref().map(|t| &t.stats)
    }

    /// Arms host-side self-profiling of the engine hot path. Scoped
    /// timers attribute `Machine::advance` wall time to the disjoint
    /// tick phases — NOC step, delivery/directory handling, LLC bank
    /// service, memory returns, core issue — plus the event scheduler's
    /// next-event computation, exported as `prof.*` counters in
    /// [`metrics`](Self::metrics) (see [`sop_obs::prof`]). Profiling
    /// reads clocks and nothing else: simulated results stay
    /// bit-identical to an unprofiled run, and a machine that never
    /// arms it pays only a dead `Option` branch per region.
    pub fn enable_profiling(&mut self) {
        self.prof = Some(Box::new(Prof::new()));
    }

    /// The live host-time profile accumulated since the last window
    /// export, if profiling is armed.
    pub fn host_prof(&self) -> Option<&Prof> {
        self.prof.as_deref()
    }

    /// Named metrics accumulated over every window run so far.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Switches between the event-driven engine (default) and the
    /// exhaustive reference semantics: stepping every cycle, sweeping
    /// every router, polling every core. The two are bit-identical by
    /// construction; the reference mode exists so equivalence tests can
    /// prove it rather than assume it.
    pub fn set_reference_mode(&mut self, reference: bool) {
        self.reference = reference;
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        let n = self.banks.len();
        let h = (line.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 29) as usize;
        // After a bank death the same hash lands in the power-of-two
        // remap over the surviving banks instead.
        if let Some(f) = &self.faults {
            if let Some(map) = &f.bank_map {
                return map[h & (map.len() - 1)];
            }
        }
        // Same value either way; the mask dodges a hardware divide on the
        // warm-up and request hot paths (bank counts are usually powers
        // of two).
        if n.is_power_of_two() {
            h & (n - 1)
        } else {
            h % n
        }
    }

    fn llc_node_of_bank(&self, bank: usize) -> usize {
        let per = if self.cfg.noc.topology == TopologyKind::NocOut {
            2
        } else {
            1
        };
        self.net.llc_endpoints()[bank / per]
    }

    fn core_node(&self, core: u32) -> usize {
        self.net.core_endpoints()[core as usize]
    }

    fn thread_of(&self, physical: u32) -> usize {
        self.active
            .iter()
            .position(|&p| p == physical)
            .expect("responses only target active cores")
    }

    fn issue_request(&mut self, core: u32, req: CoreRequest, now: u64) {
        let bank = self.bank_of(req.line);
        let src = self.core_node(core);
        let dst = self.llc_node_of_bank(bank);
        if let Some(log) = &mut self.events {
            log.instant(
                now,
                if req.fetch {
                    "fetch_issue"
                } else {
                    "data_issue"
                },
                "core",
                u64::from(core),
            );
        }
        let packet = self.net.inject(src, dst, MessageClass::Request, 0, now);
        let txn = self.txns.insert(OpenRequest {
            core,
            line: req.line,
            write: req.write,
            fetch: req.fetch,
            bank,
            issued_at: now,
            pending_acks: 0,
        });
        self.roles.insert(packet, PacketRole::Request(txn));
        if let Some(ts) = &mut self.txn_trace {
            let id = ts.issued;
            ts.issued += 1;
            if id % ts.sample_every == 0 {
                ts.live.insert(txn, TxnLive::new(id, now));
                self.net.trace_packet(packet);
            }
        }
    }

    fn respond(&mut self, txn: Key, now: u64) {
        let open = self.txns.remove(txn).expect("open request");
        // Fill the requester's private L1 (instruction fetches go to the
        // L1-I, which we do not track for coherence).
        if !open.fetch {
            let thread = self.thread_of(open.core);
            self.l1s[thread].fill(open.line, open.write);
        }
        let src = self.llc_node_of_bank(open.bank);
        let dst = self.core_node(open.core);
        let resp = self.net.inject(src, dst, MessageClass::Response, 0, now);
        self.roles.insert(
            resp,
            PacketRole::Data {
                core: open.core,
                fetch: open.fetch,
                issued_at: open.issued_at,
            },
        );
        if let Some(ts) = &mut self.txn_trace {
            // Re-key a sampled transaction's state from the (now
            // retired) request key to its response packet, and time the
            // response's trip through the NOC too.
            if let Some(l) = ts.live.remove(txn) {
                debug_assert_eq!(l.last, now, "causal hand-offs must be contiguous");
                self.net.trace_packet(resp);
                ts.resp.insert(resp, l);
            }
        }
    }

    /// Runs `warmup` cycles, resets statistics, then runs `measure`
    /// cycles and reports results. Before the timed warm-up the LLC and
    /// directory are *functionally* warmed from the same traces — the
    /// warmed-checkpoint methodology of SimFlex (§3.3) — so steady-state
    /// hit rates are reached without simulating millions of cold cycles.
    pub fn run(mut self, warmup: u64, measure: u64) -> SimResult {
        self.run_window(warmup, measure)
    }

    /// Runs one measurement window without consuming the machine: warms
    /// functionally on first use, advances `warmup` timed cycles, then
    /// measures `measure` cycles. Calling this repeatedly yields the
    /// SimFlex sampling pattern — consecutive windows drawn over one long
    /// execution (§3.3).
    pub fn run_window(&mut self, warmup: u64, measure: u64) -> SimResult {
        CYCLES_SIMULATED.fetch_add(warmup + measure, Ordering::Relaxed);
        if !self.warmed {
            self.functional_warmup();
            self.warmed = true;
        }
        self.advance(warmup);
        for bank in &mut self.banks {
            bank.reset_stats();
        }
        for core in &mut self.cores {
            core.reset_stats();
        }
        for mc in &mut self.mcs {
            mc.reset_stats();
        }
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
        self.memory_lines = 0;
        self.request_latency = Histogram::new();
        if let Some(ts) = &mut self.txn_trace {
            ts.stats.reset();
        }
        let before_packets = self.net.counters();
        self.advance(measure);
        let noc = self.net.counters().delta_since(&before_packets);
        let instructions = self.cores.iter().map(SimCore::committed).sum();

        // Publish every component's counters into one named-metric map for
        // the window; the cumulative machine registry merges each window.
        let mut window = Registry::new();
        window.counter_add("sim.cycles", measure);
        window.counter_add("sim.instructions", instructions);
        for (i, bank) in self.banks.iter().enumerate() {
            bank.export_metrics(&mut window, &format!("sim.llc.bank{i}."));
        }
        for l1 in &self.l1s {
            l1.export_metrics(&mut window, "sim.l1.");
        }
        for (i, mc) in self.mcs.iter().enumerate() {
            mc.export_metrics(&mut window, &format!("mem.chan{i}."));
        }
        window.counter_add("mem.lines", self.memory_lines);
        noc.export_metrics(&mut window, "noc.");
        let merged = window.histogram_merge("sim.request_latency", &self.request_latency);
        debug_assert!(merged.is_ok(), "{merged:?}");
        // Degradation bookkeeping appears only when a plan is armed, so
        // empty-plan reports stay byte-identical to fault-free ones.
        if let Some(f) = &self.faults {
            f.export(&mut window);
        }
        // Likewise, sim.txn.* appears only while transaction tracing is
        // armed: untraced reports are byte-identical to pre-tracing ones.
        if let Some(ts) = &self.txn_trace {
            ts.stats.export(&mut window);
            window.counter_add("sim.txn.sampled", ts.stats.completed());
            window.gauge_set("sim.txn.sample_every", ts.sample_every as f64);
        }
        // Host self-profiling too: prof.* keys exist only when armed.
        // Export-and-reset keeps the additive counters window-scoped, so
        // the cumulative registry never double-counts.
        let prof_armed = self.prof.is_some();
        if let Some(p) = &mut self.prof {
            p.export(&mut window);
            p.reset();
        }
        // Parallel-engine accounting rides the same gate: prof.par.*
        // appears only when profiling *and* the parallel engine are both
        // armed, so sequential reports — and the simulated metrics of
        // parallel ones — stay byte-identical across thread counts.
        if let Some(par) = self.par.as_deref_mut() {
            if prof_armed {
                window.counter_add("prof.par.epochs", par.stats.epochs);
                window.counter_add("prof.par.barrier.ns", par.stats.barrier_ns);
                for (d, &ns) in par.net_par.domain_ns().iter().enumerate() {
                    window.counter_add(&format!("prof.par.domain{d}.ns"), ns);
                }
                window.gauge_set("prof.par.threads", par.threads as f64);
                window.gauge_set("prof.par.domains", par.net_par.domains() as f64);
                window.gauge_set("prof.par.lookahead", par.net_par.lookahead() as f64);
            }
            par.stats = ParStats::default();
            par.net_par.reset_domain_ns();
        }
        self.registry.merge(&window);

        SimResult {
            cycles: measure,
            instructions,
            l1_invalidations: window.counter("sim.l1.invalidations"),
            llc_accesses: window.sum_counters_matching("sim.llc.", ".accesses"),
            llc_misses: window.sum_counters_matching("sim.llc.", ".misses"),
            snoops: window.sum_counters_matching("sim.llc.", ".snoops"),
            memory_lines: self.memory_lines,
            mean_packet_latency: noc.mean_latency(),
            request_latency: self.request_latency.clone(),
            noc_flit_hops: noc.flit_hops,
            noc_flit_mm: noc.flit_mm,
            active_cores: self.cfg.active_cores,
            halted: self.halted(),
            metrics: window,
        }
    }

    /// Streams enough trace accesses through the banks to populate the
    /// working set (round-robin across cores, preserving sharing).
    ///
    /// The warmed state is a pure function of the workload, the core
    /// microarchitecture, the seed, the LLC organisation, and the active
    /// physical cores — notably *not* of the fabric's link width or
    /// latency, which many sweep points vary while everything else stays
    /// fixed. A process-wide memo therefore shares the warmed banks and
    /// advanced trace generators between identically-keyed machines:
    /// cloning the cached state is bit-identical to recomputing it.
    fn functional_warmup(&mut self) {
        let key = WarmKey {
            workload: self.cfg.workload,
            core_kind: self.cfg.core_kind,
            seed: self.cfg.seed,
            llc_mb_bits: self.cfg.llc_mb.to_bits(),
            n_banks: self.banks.len(),
            active: self.active.clone(),
        };
        if let Some(state) = warm_states().lock().expect("warm memo lock").lookup(&key) {
            self.banks = state.banks.clone();
            self.cores = state.cores.clone();
            return;
        }
        let llc_lines = (self.cfg.llc_mb * 1024.0 * 1024.0 / 64.0) as u64;
        let per_core = (llc_lines * 6 / self.active.len() as u64).clamp(2_000, 100_000);
        let trace_key = WarmTraceKey {
            workload: self.cfg.workload,
            core_kind: self.cfg.core_kind,
            seed: self.cfg.seed,
            per_core,
            active: self.active.clone(),
        };
        let cached = warm_traces()
            .lock()
            .expect("warm memo lock")
            .lookup(&trace_key);
        let trace = match cached {
            Some(trace) => {
                // Same accesses another banking already drew; fast-forward
                // the trace streams to where generation would leave them.
                self.cores = trace.cores.clone();
                trace
            }
            None => {
                let accesses: Vec<Vec<u64>> = (0..self.active.len())
                    .map(|t| {
                        self.cores[t]
                            .functional_accesses(per_core)
                            .into_iter()
                            .map(|req| {
                                debug_assert_eq!(req.line & WRITE_BIT, 0);
                                req.line | if req.write { WRITE_BIT } else { 0 }
                            })
                            .collect()
                    })
                    .collect();
                let trace = Arc::new(WarmTrace {
                    accesses,
                    cores: self.cores.clone(),
                });
                warm_traces()
                    .lock()
                    .expect("warm memo lock")
                    .store(trace_key, Arc::clone(&trace));
                trace
            }
        };
        // Interleave cores so sharer lists build up the way concurrent
        // execution would build them.
        for i in 0..per_core as usize {
            for (slot, accesses) in trace.accesses.iter().enumerate() {
                let packed = accesses[i];
                let line = packed & !WRITE_BIT;
                let bank = self.bank_of(line);
                self.banks[bank].access(self.active[slot], line, packed & WRITE_BIT != 0);
            }
        }
        for bank in &mut self.banks {
            bank.reset_stats();
        }
        warm_states().lock().expect("warm memo lock").store(
            key,
            Arc::new(WarmState {
                banks: self.banks.clone(),
                cores: self.cores.clone(),
            }),
        );
    }

    /// Advances simulated time by `cycles`.
    ///
    /// The event-driven engine only executes a tick when something can
    /// happen, then jumps straight to the next interesting cycle — the
    /// minimum over the network's next event, the pending bank/memory
    /// completions, and each core's next required poll. Every skipped
    /// cycle is one where the per-cycle reference tick would have done
    /// nothing, so results are bit-identical to stepping every cycle
    /// (and the equivalence tests hold both engines to that).
    fn advance(&mut self, cycles: u64) {
        // When profiling is armed, the whole call is timed: this is the
        // denominator the per-component self-times are shares of.
        let t0 = self.prof.as_ref().map(|_| std::time::Instant::now());
        self.advance_inner(cycles);
        if let Some(p) = self.prof.as_deref_mut() {
            p.record_advance(t0.expect("armed").elapsed(), cycles);
        }
    }

    fn advance_inner(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        if self.faults.is_none() {
            return self.advance_plain(end);
        }
        // Fault path: run normally between fault cycles; at each one,
        // quiesce, apply everything due, and continue on the degraded
        // machine. A halt pins the clock to the end of the window so the
        // caller gets a structured result instead of a hang.
        while self.cycle < end {
            if self.faults.as_ref().is_some_and(|f| f.halted.is_some()) {
                self.cycle = end;
                return;
            }
            match self.next_fault_cycle() {
                Some(due) if due <= end => {
                    if due > self.cycle {
                        self.advance_plain(due);
                    }
                    self.quiesce_and_apply();
                }
                _ => self.advance_plain(end),
            }
        }
    }

    /// [`advance`](Self::advance) without fault barriers, to an absolute
    /// end cycle.
    fn advance_plain(&mut self, end: u64) {
        if self.reference {
            while self.cycle < end {
                let now = self.cycle;
                self.tick(now, true);
                self.cycle += 1;
            }
            return;
        }
        // The parallel engine only takes fault-free, untraced runs:
        // quiesce barriers drain per-cycle and packet tracing records
        // per-hop timestamps, both inherently sequential. The gate is
        // semantic-free — the engines are bit-identical.
        if self.par.is_some() && self.faults.is_none() && self.txn_trace.is_none() {
            return self.advance_parallel(end);
        }
        while self.cycle < end {
            let now = self.cycle;
            self.tick(now, false);
            self.cycle = self.next_event(now, end);
        }
    }

    /// [`advance_plain`](Self::advance_plain) on the parallel engine,
    /// accumulating the process-wide telemetry [`par_telemetry`] reads.
    fn advance_parallel(&mut self, end: u64) {
        let t0 = std::time::Instant::now();
        let before = self.par.as_ref().expect("parallel engine armed").stats;
        while self.cycle < end {
            let now = self.cycle;
            self.tick_par(now);
            self.cycle = self.next_event(now, end);
        }
        let after = self.par.as_ref().expect("parallel engine armed").stats;
        PAR_EPOCHS.fetch_add(after.epochs - before.epochs, Ordering::Relaxed);
        PAR_BARRIER_NS.fetch_add(after.barrier_ns - before.barrier_ns, Ordering::Relaxed);
        PAR_ADVANCE_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// The next cycle anything can happen, clamped to `(now, end]` — the
    /// minimum over the network's next event, pending bank/memory
    /// completions, and each core's next required poll.
    fn next_event(&mut self, now: u64, end: u64) -> u64 {
        let t = RegionTimer::start(self.prof.is_some());
        let mut next = end;
        if let Some(c) = self.net.next_event_cycle() {
            next = next.min(c);
        }
        if let Some(e) = self.bank_events.peek() {
            next = next.min(e.due);
        }
        if let Some(e) = self.mem_events.peek() {
            next = next.min(e.due);
        }
        for &c in &self.core_next_poll {
            next = next.min(c);
        }
        t.stop(&mut self.prof, HostComponent::NextEvent);
        next.clamp(now + 1, end)
    }

    /// The earliest cycle at which a pending fault (or intermittent-link
    /// restore) is due. Fault path only.
    fn next_fault_cycle(&self) -> Option<u64> {
        let f = self.faults.as_ref().expect("fault path");
        let fault = f.pending.front().map(|fa| fa.cycle);
        let restore = f.restores.first().map(|&(c, _)| c);
        match (fault, restore) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether no transaction, packet, or scheduled completion is in
    /// flight anywhere in the machine.
    fn is_drained(&self) -> bool {
        self.txns.is_empty()
            && self.net.in_flight() == 0
            && self.bank_events.is_empty()
            && self.mem_events.is_empty()
    }

    /// Freezes issue, drains every in-flight transaction (per-cycle
    /// stepping, exact in both engines), then applies everything due on
    /// the now-idle machine and re-checks core↔bank reachability.
    fn quiesce_and_apply(&mut self) {
        self.faults.as_mut().expect("fault path").quiescing = true;
        let start = self.cycle;
        while !self.is_drained() {
            let now = self.cycle;
            self.tick(now, self.reference);
            self.cycle += 1;
            assert!(
                self.cycle - start < 10_000_000,
                "quiesce failed to drain by cycle {}",
                self.cycle
            );
        }
        let mut f = self.faults.take().expect("fault path");
        f.quiescing = false;
        f.quiesce_cycles += self.cycle - start;
        let now = self.cycle;
        while f.restores.first().is_some_and(|&(c, _)| c <= now) {
            let (_, link) = f.restores.remove(0);
            let (node, port) = sop_fault::split_link_id(link);
            self.net.restore_link(node as usize, port as usize);
            f.links_restored += 1;
        }
        while f.pending.front().is_some_and(|fa| fa.cycle <= now) {
            let fault = f.pending.pop_front().expect("peeked");
            self.apply_one(&mut f, fault, now);
        }
        self.check_connectivity(&mut f);
        self.faults = Some(f);
    }

    /// Applies one fault to the idle machine. `f` is detached from
    /// `self.faults` for the duration (the machine is not ticking).
    fn apply_one(&mut self, f: &mut FaultState, fault: Fault, now: u64) {
        f.applied += 1;
        match fault.component {
            ComponentKind::Router => {
                let node = fault.id as usize;
                assert!(node < self.net.topology().len(), "router id out of range");
                match fault.mode {
                    FaultMode::Dead => {
                        if self.net.router_is_dead(node) {
                            return;
                        }
                        self.net.fail_router(node);
                        f.routers_dead += 1;
                        // A tile's router carries its core and its LLC
                        // slice with it.
                        for t in 0..self.active.len() {
                            if self.core_node(self.active[t]) == node {
                                Self::offline_thread(f, &mut self.core_next_poll, t);
                            }
                        }
                        let colocated: Vec<usize> = (0..self.banks.len())
                            .filter(|&b| self.llc_node_of_bank(b) == node)
                            .collect();
                        for bank in colocated {
                            self.kill_bank(f, bank);
                        }
                    }
                    // Degraded (or flaky) router: +2 pipeline stages;
                    // routing detours around it where cheaper paths exist.
                    FaultMode::Degraded | FaultMode::Intermittent { .. } => {
                        self.net.degrade_router(node);
                        f.routers_degraded += 1;
                    }
                }
            }
            ComponentKind::Link => {
                let (node, port) = sop_fault::split_link_id(fault.id);
                let (node, port) = (node as usize, port as usize);
                match fault.mode {
                    FaultMode::Dead => {
                        self.net.fail_link(node, port);
                        f.links_dead += 1;
                    }
                    FaultMode::Intermittent { down_cycles } => {
                        self.net.fail_link(node, port);
                        f.links_dead += 1;
                        f.restores.push((now + down_cycles.max(1), fault.id));
                        f.restores.sort_unstable();
                    }
                    FaultMode::Degraded => {
                        self.net.degrade_link(node, port);
                        f.links_degraded += 1;
                    }
                }
            }
            ComponentKind::LlcBank => {
                let bank = fault.id as usize;
                assert!(bank < self.banks.len(), "bank id out of range");
                match fault.mode {
                    FaultMode::Dead => self.kill_bank(f, bank),
                    FaultMode::Degraded | FaultMode::Intermittent { .. } => {
                        f.bank_latency[bank] = f.bank_latency[bank].saturating_mul(2);
                        f.banks_degraded += 1;
                    }
                }
            }
            ComponentKind::MemChannel => {
                let ch = fault.id as usize;
                assert!(ch < self.mcs.len(), "memory channel id out of range");
                match fault.mode {
                    FaultMode::Dead => {
                        if f.live_channels.contains(&ch) {
                            f.live_channels.retain(|&c| c != ch);
                            f.channels_dead += 1;
                            if f.live_channels.is_empty() {
                                f.halted.get_or_insert(HaltReason::NoMemory);
                            }
                        }
                    }
                    FaultMode::Degraded | FaultMode::Intermittent { .. } => {
                        self.mcs[ch].degrade();
                        f.channels_degraded += 1;
                    }
                }
            }
            // The trace-driven core has no partial-speed mode, so a
            // degraded core is treated as dead. Ids are physical; faults
            // on inactive cores are no-ops.
            ComponentKind::Core => {
                if let Some(t) = self.active.iter().position(|&p| p == fault.id) {
                    Self::offline_thread(f, &mut self.core_next_poll, t);
                }
            }
        }
        if f.online.iter().all(|&o| !o) {
            f.halted.get_or_insert(HaltReason::NoCores);
        }
    }

    fn offline_thread(f: &mut FaultState, polls: &mut [u64], t: usize) {
        if f.online[t] {
            f.online[t] = false;
            f.cores_offline += 1;
            polls[t] = u64::MAX;
        }
    }

    /// Removes a bank: the surviving banks shrink to a power-of-two
    /// remap (so the line hash stays a mask), and every bank's warm
    /// contents are invalidated — the remap reassigns nearly every
    /// line's home, so stale state must not serve wrong-home hits.
    fn kill_bank(&mut self, f: &mut FaultState, bank: usize) {
        if !f.bank_live[bank] {
            return;
        }
        f.bank_live[bank] = false;
        f.banks_dead += 1;
        let live: Vec<usize> = f
            .bank_live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(b, _)| b)
            .collect();
        if live.is_empty() {
            f.bank_map = None;
            f.halted.get_or_insert(HaltReason::NoLlc);
            return;
        }
        let pow2 = 1usize << live.len().ilog2();
        f.bank_map = Some(live[..pow2].to_vec());
        for bank in &mut self.banks {
            f.llc_lines_invalidated += bank.clear();
        }
    }

    /// Halts with [`HaltReason::Partition`] if any online core and any
    /// traffic-bearing live bank can no longer reach each other.
    fn check_connectivity(&mut self, f: &mut FaultState) {
        if f.halted.is_some() {
            return;
        }
        let topo = self.net.topology();
        for (t, &online) in f.online.iter().enumerate() {
            if !online {
                continue;
            }
            let core_node = self.net.core_endpoints()[self.active[t] as usize];
            for (bank, &live) in f.bank_live.iter().enumerate() {
                if !live {
                    continue;
                }
                // Banks outside the remap receive no traffic.
                if let Some(map) = &f.bank_map {
                    if !map.contains(&bank) {
                        continue;
                    }
                }
                let bank_node = self.llc_node_of_bank(bank);
                if !(topo.routes(core_node, bank_node) && topo.routes(bank_node, core_node)) {
                    f.halted = Some(HaltReason::Partition);
                    return;
                }
            }
        }
    }

    /// One simulation cycle, in the reference phase order: network
    /// deliveries, bank completions, memory returns, core issue. With
    /// `full` the network sweeps every router and every core is polled
    /// (the reference semantics); otherwise only active routers and
    /// cores whose poll is due run.
    fn tick(&mut self, now: u64, full: bool) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.tick();
        }
        // 1. Network deliveries. The switch-allocation sweep (route,
        // eject, credit returns) is charged to the NOC; handling what it
        // delivered — protocol dispatch at the directory, bank
        // scheduling, snoop fan-out — is charged to the directory. The
        // four phases are sequential, so one chained mark per boundary
        // both halves the clock reads and leaves no unattributed gap
        // between phases.
        let mut mark = PhaseMark::start(self.prof.is_some());
        let delivered = if full {
            self.net.step_full(now)
        } else {
            self.net.step(now)
        };
        mark.lap(&mut self.prof, HostComponent::Noc);
        for d in delivered {
            self.handle_delivered(d, now);
        }
        mark.lap(&mut self.prof, HostComponent::Directory);
        // 2. Bank accesses completing.
        self.pop_bank_events(now);
        mark.lap(&mut self.prof, HostComponent::LlcBank);
        // 3. Memory returns.
        self.pop_mem_events(now);
        mark.lap(&mut self.prof, HostComponent::Mem);
        // 4. Cores issue, in ascending thread order (injection order
        // decides packet ids, so the order is part of the semantics).
        // Skipped cores are exactly those whose poll would return None
        // without side effects — see `SimCore::next_poll_cycle`.
        for t in 0..self.active.len() {
            if !full && self.core_next_poll[t] > now {
                continue;
            }
            // Quiesce barriers freeze issue; offline cores never resume
            // (their poll is also pinned to u64::MAX for the fast path,
            // but reference mode polls unconditionally and needs this).
            if let Some(f) = &self.faults {
                if f.quiescing || !f.online[t] {
                    continue;
                }
            }
            if let Some(req) = self.cores[t].poll(now) {
                let physical = self.active[t];
                self.issue_request(physical, req, now);
            }
            self.core_next_poll[t] = self.cores[t].next_poll_cycle(now).unwrap_or(u64::MAX);
        }
        mark.lap(&mut self.prof, HostComponent::Core);
    }

    /// One simulation cycle on the parallel engine, in the same phase
    /// order as [`tick`](Self::tick): the per-domain NOC sweep and the
    /// per-chunk core polls fan out over the worker pool, and every
    /// cross-thread effect (arrivals, credits, ejections, issued
    /// requests) is replayed sequentially at the per-tick barrier in
    /// canonical — i.e. the sequential engine's — order. Bit-identical
    /// to `tick(now, false)` by construction.
    fn tick_par(&mut self, now: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.tick();
        }
        let mut mark = PhaseMark::start(self.prof.is_some());
        let measure = self.prof.is_some();
        let par = self.par.as_deref_mut().expect("parallel engine armed");
        let (delivered, stall) = self
            .net
            .step_parallel(now, &mut par.net_par, &par.pool, measure);
        par.stats.epochs += 1;
        par.stats.barrier_ns += stall;
        mark.lap(&mut self.prof, HostComponent::Noc);
        for d in delivered {
            self.handle_delivered(d, now);
        }
        mark.lap(&mut self.prof, HostComponent::Directory);
        self.pop_bank_events(now);
        mark.lap(&mut self.prof, HostComponent::LlcBank);
        self.pop_mem_events(now);
        mark.lap(&mut self.prof, HostComponent::Mem);
        self.poll_cores_parallel(now);
        mark.lap(&mut self.prof, HostComponent::Core);
    }

    /// The issue phase, fanned out: each contiguous thread chunk polls
    /// its cores in parallel (polls touch only `cores[t]` and
    /// `core_next_poll[t]`), buffering would-be requests; the buffers
    /// are then replayed in ascending thread order, so injection — and
    /// with it packet-id assignment — happens in exactly the sequential
    /// engine's order. The parallel path never runs with faults armed,
    /// so the quiesce/online checks of the sequential loop don't apply.
    fn poll_cores_parallel(&mut self, now: u64) {
        debug_assert!(self.faults.is_none(), "fault path is sequential");
        let par = self.par.as_deref_mut().expect("parallel engine armed");
        let mut polled = std::mem::take(&mut par.polled);
        struct PollCtx<'a> {
            start: usize,
            cores: &'a mut [SimCore],
            next: &'a mut [u64],
            out: &'a mut Vec<(usize, CoreRequest)>,
        }
        let mut ctxs: Vec<Mutex<PollCtx>> = Vec::with_capacity(par.chunks.len());
        let mut cores_rest = &mut self.cores[..];
        let mut next_rest = &mut self.core_next_poll[..];
        for (&(start, end), out) in par.chunks.iter().zip(polled.iter_mut()) {
            out.clear();
            let (cores, cr) = cores_rest.split_at_mut(end - start);
            let (next, nr) = next_rest.split_at_mut(end - start);
            cores_rest = cr;
            next_rest = nr;
            ctxs.push(Mutex::new(PollCtx {
                start,
                cores,
                next,
                out,
            }));
        }
        let stall = par.pool.run(ctxs.len(), &|i| {
            let mut ctx = ctxs[i].lock().expect("poll chunk lock");
            let ctx = &mut *ctx;
            for j in 0..ctx.cores.len() {
                if ctx.next[j] > now {
                    continue;
                }
                if let Some(req) = ctx.cores[j].poll(now) {
                    ctx.out.push((ctx.start + j, req));
                }
                ctx.next[j] = ctx.cores[j].next_poll_cycle(now).unwrap_or(u64::MAX);
            }
        });
        drop(ctxs);
        par.stats.barrier_ns += stall;
        for out in &polled {
            for &(t, req) in out {
                let physical = self.active[t];
                self.issue_request(physical, req, now);
            }
        }
        self.par
            .as_deref_mut()
            .expect("parallel engine armed")
            .polled = polled;
    }

    /// Protocol dispatch for one delivered packet, charged to the
    /// directory phase: requests schedule bank accesses, snoops
    /// invalidate L1s and acknowledge, acknowledgements count down
    /// toward the response, data retires at the issuing core.
    fn handle_delivered(&mut self, d: Delivered, now: u64) {
        match self.roles.remove(d.packet).expect("packet has a role") {
            PacketRole::Request(txn) => {
                // Arrived at the home bank: start the array access
                // when the bank pipeline has a slot.
                let open = *self.txns.get(txn).expect("open request");
                let bank = open.bank;
                let start = now.max(self.bank_free_at[bank]);
                // Initiation interval of 2 cycles per bank.
                self.bank_free_at[bank] = start + 2;
                let latency = match &self.faults {
                    Some(f) => f.bank_latency[bank],
                    None => self.bank_latency,
                };
                self.bank_events.push(Scheduled {
                    due: start + latency,
                    txn,
                });
                if let Some(ts) = &mut self.txn_trace {
                    if let Some(l) = ts.live.get_mut(txn) {
                        let s = self
                            .net
                            .take_packet_trace(&d)
                            .expect("sampled request packet is traced");
                        let core = u64::from(open.core);
                        let t0 = l.last;
                        l.add(Stage::NocInject, s.inject);
                        l.add(Stage::NocRoute, s.route);
                        l.add(Stage::NocEject, s.eject);
                        hop_event(&mut self.events, Stage::NocInject, l.id, t0, s.inject, core);
                        hop_event(
                            &mut self.events,
                            Stage::NocRoute,
                            l.id,
                            t0 + s.inject,
                            s.route,
                            core,
                        );
                        hop_event(
                            &mut self.events,
                            Stage::NocEject,
                            l.id,
                            t0 + s.inject + s.route,
                            s.eject,
                            core,
                        );
                        debug_assert_eq!(t0 + s.inject + s.route + s.eject, now);
                        // Bank queueing and service are fully
                        // determined at arrival; account them now.
                        l.add(Stage::BankQueue, start - now);
                        l.add(Stage::BankService, latency);
                        hop_event(
                            &mut self.events,
                            Stage::BankQueue,
                            l.id,
                            now,
                            start - now,
                            bank as u64,
                        );
                        hop_event(
                            &mut self.events,
                            Stage::BankService,
                            l.id,
                            start,
                            latency,
                            bank as u64,
                        );
                        l.last = start + latency;
                    }
                }
            }
            PacketRole::Snoop(txn) => {
                // Arrived at a core: invalidate the line in its L1
                // and acknowledge.
                if let Some(open) = self.txns.get(txn) {
                    let line = open.line;
                    // Map the snooped node back to a thread.
                    if let Some(t) = self.active.iter().position(|&p| self.core_node(p) == d.dst) {
                        self.l1s[t].snoop_invalidate(line);
                    }
                }
                let ack = self
                    .net
                    .inject(d.dst, d.src, MessageClass::Response, 0, now);
                self.roles.insert(ack, PacketRole::SnoopAck(txn));
            }
            PacketRole::SnoopAck(txn) => {
                // A snoop acknowledgement back at the directory.
                let open = self.txns.get_mut(txn).expect("parent open");
                open.pending_acks -= 1;
                if open.pending_acks == 0 {
                    let bank = open.bank;
                    if let Some(ts) = &mut self.txn_trace {
                        // The directory span covers the whole snoop
                        // round trip: bank done → last ack back.
                        // (Snoop packets themselves are not
                        // NOC-traced — their time lives here, so
                        // nothing is double-counted.)
                        if let Some(l) = ts.live.get_mut(txn) {
                            let span = now - l.last;
                            l.add(Stage::Directory, span);
                            hop_event(
                                &mut self.events,
                                Stage::Directory,
                                l.id,
                                l.last,
                                span,
                                bank as u64,
                            );
                            l.last = now;
                        }
                    }
                    self.respond(txn, now);
                }
            }
            PacketRole::Data {
                core,
                fetch,
                issued_at,
            } => {
                self.request_latency.record(now - issued_at);
                if let Some(ts) = &mut self.txn_trace {
                    if let Some(mut l) = ts.resp.remove(d.packet) {
                        let s = self
                            .net
                            .take_packet_trace(&d)
                            .expect("sampled response packet is traced");
                        let track = u64::from(core);
                        let t0 = l.last;
                        l.add(Stage::NocInject, s.inject);
                        l.add(Stage::NocRoute, s.route);
                        l.add(Stage::NocEject, s.eject);
                        hop_event(
                            &mut self.events,
                            Stage::NocInject,
                            l.id,
                            t0,
                            s.inject,
                            track,
                        );
                        hop_event(
                            &mut self.events,
                            Stage::NocRoute,
                            l.id,
                            t0 + s.inject,
                            s.route,
                            track,
                        );
                        hop_event(
                            &mut self.events,
                            Stage::NocEject,
                            l.id,
                            t0 + s.inject + s.route,
                            s.eject,
                            track,
                        );
                        // The transaction is whole: its spans tile
                        // [issued_at, now] exactly, so committing
                        // them with the total keeps per-stage sums
                        // equal to sim.txn.total's sum.
                        debug_assert_eq!(l.spans.iter().sum::<u64>(), now - issued_at);
                        for stage in Stage::ALL {
                            if l.visited & (1 << (stage as usize)) != 0 {
                                ts.stats.record(stage, l.spans[stage as usize]);
                            }
                        }
                        ts.stats.record_total(now - issued_at);
                    }
                }
                if let Some(log) = &mut self.events {
                    // One Chrome-trace slice per completed
                    // transaction, spanning issue to retire on
                    // the issuing core's track.
                    log.record(sop_obs::Event {
                        ts: issued_at,
                        dur: Some(now - issued_at),
                        name: if fetch { "fetch" } else { "data" },
                        cat: "txn",
                        track: u64::from(core),
                        args: Vec::new(),
                    });
                }
                let thread = self.thread_of(core);
                self.cores[thread].on_response(fetch);
                // The response may unblock the core this very cycle;
                // the issue phase below runs after deliveries, exactly
                // as the reference phase order has it.
                self.core_next_poll[thread] = now;
            }
        }
    }
    /// Completes every LLC bank access due by `now` (phase 2 of the
    /// reference order).
    fn pop_bank_events(&mut self, now: u64) {
        while self
            .bank_events
            .peek()
            .map(|e| e.due <= now)
            .unwrap_or(false)
        {
            let ev = self.bank_events.pop().expect("peeked");
            self.finish_bank_access(ev.txn, now);
        }
    }

    /// Injects every memory response due by `now` (phase 3).
    fn pop_mem_events(&mut self, now: u64) {
        while self
            .mem_events
            .peek()
            .map(|e| e.due <= now)
            .unwrap_or(false)
        {
            let ev = self.mem_events.pop().expect("peeked");
            self.respond(ev.txn, now);
        }
    }

    fn finish_bank_access(&mut self, txn: Key, now: u64) {
        let open = *self.txns.get(txn).expect("open request");
        let mut outcome = self.banks[open.bank].access(open.core, open.line, open.write);
        // Directory entries may still name offline cores; those snoops
        // would wait forever for an acknowledgement. The inclusive LLC
        // holds the data, so dropping them is safe and exact.
        if let (Some(f), BankOutcome::Hit { snoop }) = (&self.faults, &mut outcome) {
            if !snoop.is_empty() && f.cores_offline > 0 {
                let active = &self.active;
                snoop.retain(|&c| {
                    let t = active
                        .iter()
                        .position(|&p| p == c)
                        .expect("snoops target active cores");
                    f.online[t]
                });
            }
        }
        match outcome {
            BankOutcome::Hit { snoop } if snoop.is_empty() => {
                if let Some(log) = &mut self.events {
                    log.instant(now, "llc_hit", "llc", open.bank as u64);
                }
                self.respond(txn, now);
            }
            BankOutcome::Hit { snoop } => {
                if let Some(log) = &mut self.events {
                    log.instant(now, "llc_hit", "llc", open.bank as u64);
                }
                let src = self.llc_node_of_bank(open.bank);
                let n = snoop.len() as u32;
                for target in snoop {
                    if let Some(log) = &mut self.events {
                        log.instant(now, "snoop", "coherence", u64::from(target));
                    }
                    let dst = self.core_node(target);
                    let sp = self
                        .net
                        .inject(src, dst, MessageClass::SnoopRequest, 0, now);
                    self.roles.insert(sp, PacketRole::Snoop(txn));
                }
                self.txns.get_mut(txn).expect("open").pending_acks = n;
            }
            BankOutcome::Miss { writeback } => {
                if let Some(log) = &mut self.events {
                    log.instant(now, "llc_miss", "llc", open.bank as u64);
                }
                // Channel failover: with any channel dead, lines
                // re-interleave across the survivors.
                let ch = match &self.faults {
                    Some(f) if f.channels_dead > 0 => {
                        f.live_channels[channel_of(open.line, f.live_channels.len() as u32)]
                    }
                    _ => channel_of(open.line, self.cfg.memory_channels),
                };
                if writeback {
                    // Write-backs consume channel bandwidth only.
                    self.mcs[ch].request(now);
                    self.memory_lines += 1;
                }
                // Read after any write-back: queueing behind one's own
                // victim write-back is channel-queue time.
                let busy_before = self.mcs[ch].busy_until();
                let ready = self.mcs[ch].request(now);
                self.memory_lines += 1;
                if let Some(log) = &mut self.events {
                    // The memory access occupies the channel from now until
                    // its data returns.
                    log.complete(now, ready - now, "mem_fetch", "mem", ch as u64);
                }
                if let Some(ts) = &mut self.txn_trace {
                    if let Some(l) = ts.live.get_mut(txn) {
                        let mstart = now.max(busy_before);
                        l.add(Stage::MemQueue, mstart - l.last);
                        l.add(Stage::MemService, ready - mstart);
                        hop_event(
                            &mut self.events,
                            Stage::MemQueue,
                            l.id,
                            l.last,
                            mstart - l.last,
                            ch as u64,
                        );
                        hop_event(
                            &mut self.events,
                            Stage::MemService,
                            l.id,
                            mstart,
                            ready - mstart,
                            ch as u64,
                        );
                        l.last = ready;
                    }
                }
                self.mem_events.push(Scheduled { due: ready, txn });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_simulation_commits_instructions() {
        let cfg = SimConfig::pod_64(Workload::MapReduceW, TopologyKind::NocOut);
        let r = Machine::new(cfg).run(3_000, 6_000);
        assert!(r.instructions > 10_000, "instructions {}", r.instructions);
        assert!(r.aggregate_ipc() > 1.0);
        assert!(r.llc_accesses > 500);
        assert!(r.llc_misses < r.llc_accesses);
    }

    #[test]
    fn snoop_fraction_is_small() {
        // Fig 4.3: a few percent of LLC accesses trigger snoops.
        let cfg = SimConfig::pod_64(Workload::MapReduceW, TopologyKind::Mesh);
        let r = Machine::new(cfg).run(3_000, 8_000);
        assert!(
            r.snoop_fraction() < 0.12,
            "snoop fraction {}",
            r.snoop_fraction()
        );
    }

    #[test]
    fn scalability_limit_restricts_active_cores() {
        let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::Mesh);
        assert_eq!(cfg.active_cores, 16);
        let r = Machine::new(cfg).run(1_000, 2_000);
        assert_eq!(r.active_cores, 16);
    }

    #[test]
    fn nocout_outperforms_mesh_on_a_pod() {
        // Fig 4.6's headline: NOC-Out beats the mesh at 64 cores.
        let mesh = Machine::new(SimConfig::pod_64(Workload::WebSearch, TopologyKind::Mesh))
            .run(4_000, 10_000);
        let nocout = Machine::new(SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut))
            .run(4_000, 10_000);
        assert!(
            nocout.aggregate_ipc() > mesh.aggregate_ipc(),
            "nocout {} vs mesh {}",
            nocout.aggregate_ipc(),
            mesh.aggregate_ipc()
        );
    }

    #[test]
    fn latency_distribution_is_populated_and_ordered() {
        let r = Machine::new(SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut))
            .run(3_000, 8_000);
        let h = &r.request_latency;
        assert!(h.count() > 100, "samples {}", h.count());
        // LLC hits bound the low end; memory round trips the high end.
        assert!(h.quantile_upper(0.5) < h.quantile_upper(0.99));
        assert!(h.max() >= 90, "some requests reach memory");
        assert!(h.mean() > 5.0);
    }

    #[test]
    fn snoops_find_real_l1_lines() {
        // The directory's snoops must hit actual cached lines some of the
        // time (not only stale sharers): shared-write invalidations are
        // what MESI exists for.
        let cfg = SimConfig::pod_64(Workload::WebFrontend, TopologyKind::Mesh);
        let r = Machine::new(cfg).run(3_000, 10_000);
        assert!(r.snoops > 0, "workload generates snoops");
        assert!(r.l1_invalidations > 0, "some snoops must find L1 lines");
        assert!(r.l1_invalidations <= r.snoops + r.llc_accesses);
    }

    #[test]
    fn memory_traffic_is_reported() {
        let cfg = SimConfig::pod_64(Workload::MediaStreaming, TopologyKind::NocOut);
        let r = Machine::new(cfg).run(2_000, 5_000);
        assert!(r.memory_lines > 0);
        assert!(r.offchip_gbps(2.0) > 0.0);
    }

    #[test]
    fn validation_config_runs_small_machines() {
        for cores in [1u32, 4, 16] {
            let cfg = SimConfig::validation(Workload::SatSolver, cores, TopologyKind::Crossbar);
            let r = Machine::new(cfg).run(2_000, 4_000);
            assert!(r.instructions > 0, "{cores} cores");
        }
    }

    #[test]
    fn registry_is_a_superset_of_the_typed_result() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Crossbar);
        let mut m = Machine::new(cfg);
        let r = m.run_window(1_000, 3_000);
        assert_eq!(
            r.metrics.sum_counters_matching("sim.llc.", ".accesses"),
            r.llc_accesses
        );
        assert_eq!(
            r.metrics.sum_counters_matching("sim.llc.", ".misses"),
            r.llc_misses
        );
        assert_eq!(r.metrics.counter("sim.instructions"), r.instructions);
        assert_eq!(r.metrics.counter("sim.cycles"), r.cycles);
        assert_eq!(r.metrics.counter("mem.lines"), r.memory_lines);
        assert_eq!(r.metrics.counter("noc.flit_hops"), r.noc_flit_hops);
        assert_eq!(
            r.metrics.counter("sim.l1.invalidations"),
            r.l1_invalidations
        );
        assert!(r.metrics.counter("sim.l1.fills") > 0);
        assert_eq!(
            r.metrics
                .histogram("sim.request_latency")
                .map(Histogram::count),
            Some(r.request_latency.count())
        );
        // Per-channel memory counters partition the total.
        assert_eq!(
            r.metrics.sum_counters_matching("mem.chan", ".lines"),
            r.memory_lines
        );
        // The cumulative machine registry merges windows.
        m.run_window(0, 3_000);
        assert_eq!(m.metrics().counter("sim.cycles"), 6_000);
    }

    #[test]
    fn event_log_captures_the_transaction_lifecycle() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Crossbar);
        let mut m = Machine::new(cfg);
        m.enable_tracing(65_536);
        m.run_window(500, 3_000);
        let log = m.event_log().expect("tracing enabled");
        assert!(!log.is_empty());
        let names: std::collections::HashSet<&str> = log.events().map(|e| e.name).collect();
        for expected in ["data_issue", "llc_hit", "llc_miss", "mem_fetch", "data"] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
        // Retire slices span issue → response delivery.
        let txn = log
            .events()
            .find(|e| e.cat == "txn")
            .expect("has transactions");
        assert!(txn.dur.expect("complete event") > 0);
        // And the whole log exports as valid Chrome-trace JSON.
        let trace = log.to_chrome_trace("validation-8");
        sop_obs::json::parse(&trace.to_compact_string()).expect("valid JSON");
    }

    #[test]
    fn txn_tracing_attributes_every_cycle_of_every_sampled_transaction() {
        // Mesh + WebFrontend exercises all stages: NOC hops, bank
        // queue/service, directory snoop round trips, and memory.
        let cfg = SimConfig::validation(Workload::WebFrontend, 16, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        m.enable_txn_tracing(1);
        let r = m.run_window(1_000, 4_000);
        let stats = m.txn_stats().expect("tracing armed");
        assert!(stats.completed() > 100, "completed {}", stats.completed());
        // The exactness invariant: per-stage span sums tile the totals.
        assert_eq!(stats.stage_sum(), stats.total().sum());
        // Sampling every transaction makes sim.txn.total the same
        // distribution as the always-on request-latency histogram.
        assert_eq!(
            r.metrics.histogram("sim.txn.total"),
            r.metrics.histogram("sim.request_latency")
        );
        // Every stage the protocol can visit is populated on this config.
        for stage in Stage::ALL {
            assert!(
                r.metrics.histogram(stage.key()).expect("exported").count() > 0,
                "no samples for {}",
                stage.key()
            );
        }
        assert_eq!(r.metrics.counter("sim.txn.sampled"), stats.completed());
        assert_eq!(r.metrics.gauge("sim.txn.sample_every"), Some(1.0));
    }

    #[test]
    fn txn_tracing_does_not_perturb_the_simulation() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Mesh);
        let plain = Machine::new(cfg).run(1_000, 3_000);
        let mut m = Machine::new(cfg);
        m.enable_txn_tracing(1);
        let traced = m.run_window(1_000, 3_000);
        // Everything but the additional sim.txn.* keys is bit-identical.
        assert_eq!(plain.instructions, traced.instructions);
        assert_eq!(plain.request_latency, traced.request_latency);
        assert_eq!(plain.noc_flit_hops, traced.noc_flit_hops);
        let untraced_keys: Vec<_> = plain.metrics.iter().collect();
        let traced_minus_txn: Vec<_> = traced
            .metrics
            .iter()
            .filter(|(k, _)| !k.starts_with("sim.txn."))
            .collect();
        assert_eq!(untraced_keys, traced_minus_txn);
        assert!(plain.metrics.histogram("sim.txn.total").is_none());
    }

    #[test]
    fn profiling_does_not_perturb_the_simulation() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Mesh);
        let plain = Machine::new(cfg).run(1_000, 3_000);
        let mut m = Machine::new(cfg);
        m.enable_profiling();
        let profiled = m.run_window(1_000, 3_000);
        // Everything but the additional prof.* keys is bit-identical.
        assert_eq!(plain.instructions, profiled.instructions);
        assert_eq!(plain.request_latency, profiled.request_latency);
        assert_eq!(plain.noc_flit_hops, profiled.noc_flit_hops);
        let plain_keys: Vec<_> = plain.metrics.iter().collect();
        let profiled_minus_prof: Vec<_> = profiled
            .metrics
            .iter()
            .filter(|(k, _)| !k.starts_with("prof."))
            .collect();
        assert_eq!(plain_keys, profiled_minus_prof);
        assert_eq!(plain.metrics.counter("prof.advance.calls"), 0);
    }

    #[test]
    fn profiled_self_times_are_bounded_by_advance_wall() {
        let cfg = SimConfig::validation(Workload::DataServing, 8, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        m.enable_profiling();
        let r = m.run_window(1_000, 3_000);
        let b = sop_obs::ProfBreakdown::from_registry(&r.metrics).expect("profiled run");
        // Disjoint regions can never out-spend the advance total.
        assert!(b.consistent(), "{}", b.render());
        assert!(b.advance_ns > 0 && b.ticks > 0, "{}", b.render());
        assert_eq!(b.cycles, 4_000);
        for row in &b.rows {
            assert!(row.calls > 0, "{} never sampled:\n{}", row.key, b.render());
        }
        // Windows export-and-reset: the live profile is empty again.
        assert_eq!(m.host_prof().expect("armed").advance_calls, 0);
    }

    #[test]
    fn txn_tracing_is_deterministic_and_engine_independent() {
        let run = |reference: bool, sample_every: u64| {
            let cfg = SimConfig::validation(Workload::WebFrontend, 16, TopologyKind::Mesh);
            let mut m = Machine::new(cfg);
            m.set_reference_mode(reference);
            m.enable_txn_tracing(sample_every);
            m.run_window(1_000, 3_000)
        };
        let a = run(false, 4);
        let b = run(false, 4);
        assert_eq!(a, b, "same config, same bits");
        let reference = run(true, 4);
        assert_eq!(a, reference, "event-driven vs per-cycle reference");
        // 1-in-4 sampling records roughly a quarter of the transactions.
        let full = run(false, 1);
        let full_n = full.metrics.counter("sim.txn.sampled");
        let quarter_n = a.metrics.counter("sim.txn.sampled");
        assert!(
            quarter_n > 0 && quarter_n < full_n,
            "{quarter_n} vs {full_n}"
        );
    }

    #[test]
    fn txn_hops_land_in_the_event_log_on_component_tracks() {
        let cfg = SimConfig::validation(Workload::WebFrontend, 16, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        m.enable_tracing(1 << 16);
        m.enable_txn_tracing(1);
        m.run_window(500, 3_000);
        let log = m.event_log().expect("tracing enabled");
        let hop_names: std::collections::HashSet<&str> = log
            .events()
            .filter(|e| e.cat == "txn.hop")
            .map(|e| e.name)
            .collect();
        for stage in Stage::ALL {
            assert!(hop_names.contains(stage.key()), "missing {}", stage.key());
        }
        // Hop events carry their transaction id for cross-lane tracking.
        let hop = log.events().find(|e| e.cat == "txn.hop").expect("has hops");
        assert!(hop.args.iter().any(|(k, _)| *k == "txn"));
        let trace = log.to_chrome_trace("traced");
        sop_obs::json::parse(&trace.to_compact_string()).expect("valid JSON");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sample_period_panics() {
        let cfg = SimConfig::validation(Workload::WebSearch, 2, TopologyKind::Mesh);
        Machine::new(cfg).enable_txn_tracing(0);
    }

    #[test]
    #[should_panic(expected = "more threads than cores")]
    fn too_many_active_cores_panics() {
        let mut cfg = SimConfig::pod_64(Workload::MapReduceW, TopologyKind::Mesh);
        cfg.active_cores = 65;
        Machine::new(cfg);
    }

    fn faulted_run(plan: &FaultPlan, reference: bool) -> SimResult {
        let cfg = SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        m.set_reference_mode(reference);
        m.set_fault_plan(plan);
        m.run_window(1_000, 3_000)
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Mesh);
        let plain = Machine::new(cfg).run(1_000, 3_000);
        let mut m = Machine::new(cfg);
        m.set_fault_plan(&FaultPlan::new());
        let with_plan = m.run_window(1_000, 3_000);
        assert_eq!(plain, with_plan);
        assert_eq!(with_plan.halted, None);
    }

    #[test]
    fn router_death_degrades_but_does_not_stop_the_machine() {
        let healthy = faulted_run(&FaultPlan::new(), false);
        let mut plan = FaultPlan::new();
        // An interior mesh router dies mid-warmup: its tile's core and
        // LLC slice go with it, traffic detours around the hole.
        plan.push(Fault::dead(ComponentKind::Router, 5, 500));
        let r = faulted_run(&plan, false);
        assert_eq!(r.halted, None);
        assert!(r.instructions > 0, "survivors keep executing");
        assert!(
            r.instructions < healthy.instructions,
            "losing a tile must cost throughput: {} vs {}",
            r.instructions,
            healthy.instructions
        );
        assert_eq!(r.metrics.gauge("sim.fault.routers.dead"), Some(1.0));
        assert_eq!(r.metrics.gauge("sim.fault.cores.offline"), Some(1.0));
        assert!(r.metrics.gauge("sim.fault.llc_banks.dead").expect("gauge") >= 1.0);
        assert!(healthy.metrics.gauge("sim.fault.routers.dead").is_none());
    }

    #[test]
    fn same_fault_plan_is_bit_deterministic_and_engine_independent() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::Router, 9, 600));
        plan.push(Fault::dead(ComponentKind::Core, 3, 1_500));
        plan.push(Fault::degraded(ComponentKind::MemChannel, 0, 2_000));
        let a = faulted_run(&plan, false);
        let b = faulted_run(&plan, false);
        assert_eq!(a, b, "same plan, same bits");
        let reference = faulted_run(&plan, true);
        assert_eq!(a, reference, "event-driven vs per-cycle reference");
    }

    #[test]
    fn bank_death_remaps_and_invalidates_warm_state() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::LlcBank, 2, 0));
        let r = faulted_run(&plan, false);
        assert_eq!(r.halted, None);
        assert!(r.llc_accesses > 0, "remapped LLC still serves requests");
        assert_eq!(r.metrics.gauge("sim.fault.llc_banks.dead"), Some(1.0));
        assert!(
            r.metrics
                .gauge("sim.fault.llc.lines_invalidated")
                .expect("gauge")
                > 0.0,
            "warm state must be invalidated on remap"
        );
        // The dead bank serves nothing during the window.
        assert_eq!(r.metrics.counter("sim.llc.bank2.accesses"), 0);
    }

    #[test]
    fn memory_channel_death_fails_over_to_survivors() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::MemChannel, 1, 0));
        let r = faulted_run(&plan, false);
        assert_eq!(r.halted, None);
        assert!(r.memory_lines > 0, "memory still serves lines");
        assert_eq!(r.metrics.counter("mem.chan1.lines"), 0);
        assert_eq!(
            r.metrics.sum_counters_matching("mem.chan", ".lines"),
            r.memory_lines
        );
    }

    #[test]
    fn hub_death_partitions_the_star_and_halts_structurally() {
        let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Crossbar);
        let mut m = Machine::new(cfg);
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::Router, 0, 500)); // the hub
        m.set_fault_plan(&plan);
        let r = m.run_window(1_000, 2_000);
        assert_eq!(r.halted, Some(HaltReason::Partition));
        assert_eq!(m.halted(), Some(HaltReason::Partition));
        assert_eq!(r.metrics.gauge("sim.fault.halted"), Some(1.0));
    }

    #[test]
    fn all_cores_dead_halts_with_no_cores() {
        let cfg = SimConfig::validation(Workload::WebSearch, 2, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::Core, 0, 100));
        plan.push(Fault::dead(ComponentKind::Core, 1, 100));
        m.set_fault_plan(&plan);
        let r = m.run_window(500, 1_000);
        assert_eq!(r.halted, Some(HaltReason::NoCores));
    }

    #[test]
    fn intermittent_link_outage_heals() {
        let cfg = SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh);
        let mut m = Machine::new(cfg);
        let mut plan = FaultPlan::new();
        plan.push(Fault::intermittent_link(0, 0, 500, 1_000));
        m.set_fault_plan(&plan);
        let r = m.run_window(1_000, 3_000);
        assert_eq!(r.halted, None);
        assert!(r.instructions > 0);
        assert_eq!(r.metrics.gauge("sim.fault.links.dead"), Some(1.0));
        assert_eq!(r.metrics.gauge("sim.fault.links.restored"), Some(1.0));
    }

    #[test]
    fn seeded_router_deaths_sweep_is_monotone_under_growing_damage() {
        // The degradation experiment's core claim: more dead routers,
        // no more throughput. (Seeded victim sets nest by construction.)
        let cfg = SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh);
        let routers = Machine::new(cfg).net.topology().len() as u32;
        let ipc = |k: u32| {
            let plan = FaultPlan::seeded_router_deaths(4, k, routers, 0);
            let mut m = Machine::new(cfg);
            m.set_fault_plan(&plan);
            let r = m.run_window(1_000, 3_000);
            (r.aggregate_ipc(), r.halted)
        };
        // Adjacent victim counts can tie within noise; well-separated
        // damage levels must order strictly.
        let (ipc0, h0) = ipc(0);
        let (ipc2, h2) = ipc(2);
        let (ipc4, h4) = ipc(4);
        assert_eq!((h0, h2, h4), (None, None, None));
        assert!(ipc0 > 0.0 && ipc2 > 0.0 && ipc4 > 0.0);
        assert!(ipc0 > ipc2 && ipc2 > ipc4, "{ipc0} {ipc2} {ipc4}");
    }
}
