//! Sensitivity of the chapter-5 conclusions to the TCO model's knobs.
//!
//! §5.3.3 sweeps processor price explicitly; this module generalizes the
//! exercise to the other first-order inputs — electricity price, server
//! utilization, and hardware lifetime — so the robustness of the
//! performance/TCO ordering can be checked rather than assumed.

use crate::datacenter::Datacenter;
use crate::params::TcoParams;
use sop_core::designs::DesignKind;

/// One sensitivity sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// The knob's value at this point.
    pub value: f64,
    /// Performance/TCO for every design in [`DesignKind::table_5_1`] order.
    pub perf_per_tco: Vec<f64>,
}

fn sweep<F>(values: &[f64], memory_gb: u32, mutate: F) -> Vec<SensitivityPoint>
where
    F: Fn(&mut TcoParams, f64),
{
    values
        .iter()
        .map(|&v| {
            let mut params = TcoParams::thesis();
            mutate(&mut params, v);
            let perf_per_tco = DesignKind::table_5_1()
                .into_iter()
                .map(|d| Datacenter::for_design(d, &params, memory_gb).perf_per_tco())
                .collect();
            SensitivityPoint {
                value: v,
                perf_per_tco,
            }
        })
        .collect()
}

/// Sweeps the electricity price (the thesis assumes $0.07/kWh; real
/// datacenters range roughly $0.03–$0.15).
pub fn electricity_sweep(memory_gb: u32) -> Vec<SensitivityPoint> {
    sweep(&[0.03, 0.07, 0.11, 0.15], memory_gb, |p, v| {
        p.usd_per_kwh = v
    })
}

/// Sweeps the server amortization horizon (the thesis assumes 3 years).
pub fn lifetime_sweep(memory_gb: u32) -> Vec<SensitivityPoint> {
    sweep(&[2.0, 3.0, 4.0, 5.0], memory_gb, |p, v| p.server_years = v)
}

/// Sweeps rack power density (the thesis compares 17kW racks against
/// 6.6kW and reports identical trends, §5.2.3). Lower-density racks are
/// populated with proportionally fewer 1U servers, as a real facility
/// would leave slots empty rather than starve every server.
pub fn rack_power_sweep(memory_gb: u32) -> Vec<SensitivityPoint> {
    sweep(&[6_600.0, 12_000.0, 17_000.0], memory_gb, |p, v| {
        p.servers_per_rack = ((v / p.rack_power_w) * f64::from(p.servers_per_rack))
            .floor()
            .max(1.0) as u32;
        p.rack_power_w = v;
    })
}

/// Whether the Scale-Out designs (last rows of the Table 5.1 roster) stay
/// ahead of the conventional design (first row) at every swept point.
pub fn ordering_is_robust(points: &[SensitivityPoint]) -> bool {
    points.iter().all(|pt| {
        let conv = pt.perf_per_tco[0];
        let sop_ooo = pt.perf_per_tco[3];
        let sop_io = pt.perf_per_tco[6];
        sop_ooo > conv && sop_io > sop_ooo * 0.95
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_survives_electricity_prices() {
        assert!(ordering_is_robust(&electricity_sweep(64)));
    }

    #[test]
    fn ordering_survives_lifetimes() {
        assert!(ordering_is_robust(&lifetime_sweep(64)));
    }

    #[test]
    fn ordering_survives_rack_density() {
        // §5.2.3: "we found the trends to be identical across the two
        // rack configurations."
        assert!(ordering_is_robust(&rack_power_sweep(64)));
    }

    #[test]
    fn cheaper_electricity_raises_perf_per_tco() {
        let pts = electricity_sweep(64);
        // Cheaper energy -> lower TCO -> higher perf/TCO for everyone.
        for design in 0..pts[0].perf_per_tco.len() {
            assert!(pts[0].perf_per_tco[design] > pts.last().unwrap().perf_per_tco[design]);
        }
    }

    #[test]
    fn longer_amortization_raises_perf_per_tco() {
        let pts = lifetime_sweep(64);
        let first = pts.first().expect("non-empty");
        let last = pts.last().expect("non-empty");
        for design in 0..first.perf_per_tco.len() {
            assert!(last.perf_per_tco[design] > first.perf_per_tco[design]);
        }
    }

    #[test]
    fn sweeps_cover_requested_values() {
        assert_eq!(electricity_sweep(64).len(), 4);
        assert_eq!(rack_power_sweep(64).len(), 3);
    }
}
