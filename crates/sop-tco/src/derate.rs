//! Availability-derated capacity: what a datacenter's performance is
//! worth once components fail faster than technicians replace them.
//!
//! The thesis' TCO model (chapter 5) assumes every pod runs at full
//! throughput for the machine's life. A scale-out facility actually
//! operates with some fraction of its fabric dead at any instant —
//! routers, links, whole pods — and the interesting policy question is
//! whether to *drain* a damaged pod (capacity 0 until repair) or keep
//! it serving degraded. The degradation curve measured by the simulator
//! (`sop-bench`'s `degradation` campaign: relative performance vs
//! fraction of failed routers) answers that: a [`DegradationCurve`]
//! interpolates it, and [`derated_performance`] folds it with an
//! expected steady-state failure fraction into the effective capacity
//! multiplier a TCO comparison should use.

/// A measured performance-vs-damage curve: `(failed_fraction,
/// relative_performance)` points, interpolated linearly between samples.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationCurve {
    points: Vec<(f64, f64)>,
}

impl DegradationCurve {
    /// Builds a curve from `(failed_fraction, relative_performance)`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two samples, the first is not at
    /// zero damage with relative performance 1.0, fractions do not
    /// strictly increase, any value falls outside `[0, 1]`, or the curve
    /// is not monotone non-increasing (more damage must never *add*
    /// throughput — an inversion means the sweep that produced the data
    /// is broken, not that the datacenter got lucky).
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a curve needs at least two samples");
        assert!(
            points[0] == (0.0, 1.0),
            "curve must start healthy: (0, 1), got {:?}",
            points[0]
        );
        for pair in points.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "failed fractions must strictly increase: {pair:?}"
            );
            assert!(
                pair[1].1 <= pair[0].1,
                "degradation must be monotone: {pair:?}"
            );
        }
        for &(x, y) in &points {
            assert!(
                (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
                "samples must lie in [0,1]: ({x}, {y})"
            );
        }
        DegradationCurve { points }
    }

    /// Relative performance at `failed_fraction`, linearly interpolated.
    /// Beyond the last sample the curve is held flat at its final value
    /// (the measured sweep ends before total loss; extrapolating a slope
    /// past it would invent data).
    pub fn relative_performance(&self, failed_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&failed_fraction),
            "failed fraction must lie in [0,1]: {failed_fraction}"
        );
        let pts = &self.points;
        if failed_fraction >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|&(x, _)| x <= failed_fraction);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        y0 + (y1 - y0) * (failed_fraction - x0) / (x1 - x0)
    }

    /// The samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Effective capacity multiplier for a fleet whose pods sit at
/// `expected_failed_fraction` of dead components in steady state
/// (failure rate x repair latency), under two repair policies:
///
/// * **degrade** — damaged pods keep serving at the measured curve's
///   relative performance;
/// * **drain** — damaged pods are taken out entirely until repaired, so
///   a pod with *any* damage contributes zero.
///
/// Returns `(degrade_multiplier, drain_multiplier)`; the gap between
/// them is what graceful degradation is worth. `damaged_pod_fraction`
/// is the share of pods carrying any damage at all.
pub fn derated_performance(
    curve: &DegradationCurve,
    expected_failed_fraction: f64,
    damaged_pod_fraction: f64,
) -> (f64, f64) {
    assert!(
        (0.0..=1.0).contains(&damaged_pod_fraction),
        "pod fraction must lie in [0,1]: {damaged_pod_fraction}"
    );
    let degraded = curve.relative_performance(expected_failed_fraction);
    let degrade = 1.0 - damaged_pod_fraction * (1.0 - degraded);
    let drain = 1.0 - damaged_pod_fraction;
    (degrade, drain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> DegradationCurve {
        DegradationCurve::new(vec![(0.0, 1.0), (0.125, 0.9), (0.25, 0.7)])
    }

    #[test]
    fn interpolates_between_samples_and_holds_flat_past_the_end() {
        let c = curve();
        assert_eq!(c.relative_performance(0.0), 1.0);
        assert!((c.relative_performance(0.0625) - 0.95).abs() < 1e-12);
        assert_eq!(c.relative_performance(0.25), 0.7);
        assert_eq!(c.relative_performance(1.0), 0.7);
    }

    #[test]
    fn degrading_beats_draining() {
        let (degrade, drain) = derated_performance(&curve(), 0.125, 0.3);
        assert!(degrade > drain, "{degrade} vs {drain}");
        assert!((drain - 0.7).abs() < 1e-12);
        assert!((degrade - (1.0 - 0.3 * 0.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_curves_are_rejected() {
        DegradationCurve::new(vec![(0.0, 1.0), (0.1, 0.8), (0.2, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "start healthy")]
    fn curves_must_start_at_zero_damage() {
        DegradationCurve::new(vec![(0.1, 1.0), (0.2, 0.9)]);
    }
}
