//! Datacenter composition and the four-category TCO sum (§5.2).

use crate::params::TcoParams;
use crate::price::market_price_usd;
use crate::CHAPTER5_NODE;
use sop_core::designs::{reference_chip, DesignKind};
use sop_core::ChipSpec;

/// Months used to express TCO (costs are reported per month, as EETCO
/// does; ratios are horizon-independent).
const MONTHS_PER_YEAR: f64 = 12.0;

/// Monthly TCO split by expense category (§5.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoBreakdown {
    /// Land, building, power provisioning and cooling equipment.
    pub infrastructure_usd: f64,
    /// Servers plus network gear (amortized).
    pub hardware_usd: f64,
    /// Electricity.
    pub power_usd: f64,
    /// Repairs and personnel.
    pub maintenance_usd: f64,
}

impl TcoBreakdown {
    /// Total monthly TCO.
    pub fn total_usd(&self) -> f64 {
        self.infrastructure_usd + self.hardware_usd + self.power_usd + self.maintenance_usd
    }
}

/// A fully populated datacenter built around one server-chip design.
#[derive(Debug, Clone)]
pub struct Datacenter {
    /// The chip populating every socket.
    pub chip: ChipSpec,
    /// Unit price assumed for the chip.
    pub chip_price_usd: f64,
    /// Processors per 1U server.
    pub sockets_per_server: u32,
    /// DRAM per 1U server in GB.
    pub memory_gb: u32,
    /// Racks in the facility.
    pub racks: u32,
    /// Aggregate performance (application instructions per cycle summed
    /// over every chip — proportional to throughput at the fixed 2GHz).
    pub performance: f64,
    /// Monthly TCO.
    pub tco: TcoBreakdown,
    params: TcoParams,
}

impl Datacenter {
    /// Builds the facility for a reference design at the chapter-5 node,
    /// with `memory_gb` of DRAM per 1U server.
    pub fn for_design(design: DesignKind, params: &TcoParams, memory_gb: u32) -> Self {
        let chip = reference_chip(design, CHAPTER5_NODE);
        let price = market_price_usd(design, chip.die_mm2);
        Datacenter::for_chip(chip, price, params, memory_gb)
    }

    /// Builds the facility for an explicit chip and unit price.
    ///
    /// # Panics
    ///
    /// Panics if not even one processor fits the server power budget.
    pub fn for_chip(
        chip: ChipSpec,
        chip_price_usd: f64,
        params: &TcoParams,
        memory_gb: u32,
    ) -> Self {
        let budget = params.processor_budget_w(memory_gb);
        let sockets = (budget / chip.power_w) as u32;
        assert!(sockets >= 1, "no {} fits a {budget}W budget", chip.label);
        let racks = params.racks();
        let servers = racks * params.servers_per_rack;
        let chips = u64::from(servers) * u64::from(sockets);
        let performance = chips as f64 * chip.aggregate_ipc;
        let tco = tco_breakdown(&chip, chip_price_usd, params, memory_gb, sockets);
        Datacenter {
            chip,
            chip_price_usd,
            sockets_per_server: sockets,
            memory_gb,
            racks,
            performance,
            tco,
            params: *params,
        }
    }

    /// Performance per monthly TCO dollar (Fig 5.3's metric).
    pub fn perf_per_tco(&self) -> f64 {
        self.performance / self.tco.total_usd()
    }

    /// Performance per watt of facility critical power (Fig 5.4).
    pub fn perf_per_watt(&self) -> f64 {
        self.performance / self.params.datacenter_power_w
    }

    /// Total processors in the facility.
    pub fn total_chips(&self) -> u64 {
        u64::from(self.racks)
            * u64::from(self.params.servers_per_rack)
            * u64::from(self.sockets_per_server)
    }

    /// Total 1U servers in the facility.
    pub fn servers(&self) -> u64 {
        u64::from(self.racks) * u64::from(self.params.servers_per_rack)
    }

    /// Monthly TCO amortized over a single server: the per-unit cost the
    /// fleet simulator multiplies by fleet size when facility capacity
    /// differs from the 20MW reference build-out.
    pub fn monthly_cost_per_server_usd(&self) -> f64 {
        self.tco.total_usd() / self.servers() as f64
    }
}

fn tco_breakdown(
    chip: &ChipSpec,
    chip_price_usd: f64,
    p: &TcoParams,
    memory_gb: u32,
    sockets: u32,
) -> TcoBreakdown {
    let racks = f64::from(p.racks());
    let servers = racks * f64::from(p.servers_per_rack);
    let chips = servers * f64::from(sockets);

    // Infrastructure: floor space (with equipment overhead) plus
    // power/cooling equipment sized to critical power, over 15 years.
    let floor_m2 = racks * p.rack_footprint_m2 * (1.0 + p.equipment_space_overhead);
    let infra_capex =
        floor_m2 * p.infrastructure_usd_per_m2 + p.datacenter_power_w * p.equipment_usd_per_w;
    let infrastructure_usd = infra_capex / (p.infrastructure_years * MONTHS_PER_YEAR);

    // Server hardware over 3 years, network gear over 4.
    let server_capex = servers
        * (f64::from(sockets) * chip_price_usd
            + f64::from(memory_gb) * p.dram_usd_per_gb
            + f64::from(p.disks_per_server) * p.disk_usd
            + p.motherboard_usd);
    let network_capex = racks * p.network_usd_per_rack;
    let hardware_usd = server_capex / (p.server_years * MONTHS_PER_YEAR)
        + network_capex / (p.network_years * MONTHS_PER_YEAR);

    // Power: facility draw at PUE, billed per kWh. IT draw is bounded by
    // the rack budget; servers run at their provisioned power.
    let it_w = racks * p.rack_power_w;
    let hours_per_month = 24.0 * 365.25 / 12.0;
    let power_usd = it_w * p.pue / 1000.0 * p.usd_per_kwh * hours_per_month;

    // Maintenance: personnel plus MTTF-driven replacements.
    let monthly_fail = |count: f64, mttf_years: f64| count / (mttf_years * MONTHS_PER_YEAR);
    let repairs = monthly_fail(servers * f64::from(p.disks_per_server), p.disk_mttf_years)
        * p.disk_usd
        + monthly_fail(servers * f64::from(memory_gb), p.dram_mttf_years) * p.dram_usd_per_gb
        + monthly_fail(chips, p.cpu_mttf_years) * chip_price_usd;
    let maintenance_usd = racks * p.personnel_usd_per_rack_month + repairs;
    let _ = chip;
    TcoBreakdown {
        infrastructure_usd,
        hardware_usd,
        power_usd,
        maintenance_usd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sop_tech::CoreKind;

    fn dc(design: DesignKind) -> Datacenter {
        Datacenter::for_design(design, &TcoParams::thesis(), 64)
    }

    #[test]
    fn socket_counts_match_section_5_3_1() {
        assert_eq!(dc(DesignKind::Conventional).sockets_per_server, 2);
        assert_eq!(
            dc(DesignKind::OnePod(CoreKind::OutOfOrder)).sockets_per_server,
            5
        );
    }

    #[test]
    fn fig_5_1_performance_ordering() {
        let conv = dc(DesignKind::Conventional).performance;
        let tiled = dc(DesignKind::Tiled(CoreKind::OutOfOrder)).performance;
        let one_pod = dc(DesignKind::OnePod(CoreKind::OutOfOrder)).performance;
        let sop = dc(DesignKind::ScaleOut(CoreKind::OutOfOrder)).performance;
        let sop_io = dc(DesignKind::ScaleOut(CoreKind::InOrder)).performance;
        // §5.3.1: 1pod ~4.4x conventional and ~1.3x tiled; in-order
        // Scale-Out is the overall winner.
        let r = one_pod / conv;
        assert!((3.4..5.6).contains(&r), "1pod/conv {r}");
        assert!(one_pod > tiled);
        assert!(sop > one_pod);
        assert!(sop_io >= sop, "in-order SOP leads: {sop_io} vs {sop}");
    }

    #[test]
    fn fig_5_2_tco_spread_is_much_smaller_than_performance_spread() {
        // §5.3.1: TCO differences are muted because processors are only a
        // fraction of the budget.
        let designs = [
            DesignKind::Conventional,
            DesignKind::Tiled(CoreKind::OutOfOrder),
            DesignKind::OnePod(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::InOrder),
        ];
        let tcos: Vec<f64> = designs.iter().map(|&d| dc(d).tco.total_usd()).collect();
        let max = tcos.iter().cloned().fold(f64::MIN, f64::max);
        let min = tcos.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.4, "TCO spread {}", max / min);
    }

    #[test]
    fn headline_4_4x_to_7_1x_perf_per_tco() {
        let conv = dc(DesignKind::Conventional).perf_per_tco();
        let sop_ooo = dc(DesignKind::ScaleOut(CoreKind::OutOfOrder)).perf_per_tco();
        let sop_io = dc(DesignKind::ScaleOut(CoreKind::InOrder)).perf_per_tco();
        let lo = sop_ooo / conv;
        let hi = sop_io / conv;
        assert!(lo > 3.5, "OoO gain {lo}");
        assert!(hi > lo, "in-order gain {hi} vs {lo}");
        assert!(hi < 10.0, "gain {hi} suspiciously large");
    }

    #[test]
    fn one_pod_tco_is_not_lower_despite_cheap_chips() {
        // §5.3.1's paradox: five cheap sockets cost as much as two big
        // ones, so 1pod's TCO is within a few percent of conventional's.
        let conv = dc(DesignKind::Conventional).tco.total_usd();
        let one_pod = dc(DesignKind::OnePod(CoreKind::OutOfOrder)).tco.total_usd();
        let ratio = one_pod / conv;
        assert!((0.92..1.12).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_memory_lowers_perf_per_tco() {
        // §5.3.2: memory adds cost while shrinking the processor budget.
        let p = TcoParams::thesis();
        let small = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::OutOfOrder), &p, 32);
        let large = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::OutOfOrder), &p, 128);
        assert!(large.perf_per_tco() < small.perf_per_tco());
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let d = dc(DesignKind::Conventional);
        let b = d.tco;
        assert!(
            (b.total_usd()
                - (b.infrastructure_usd + b.hardware_usd + b.power_usd + b.maintenance_usd))
                .abs()
                < 1e-9
        );
        assert!(b.power_usd > 0.0 && b.hardware_usd > 0.0);
    }

    #[test]
    fn larger_dies_win_on_tco_at_equal_methodology() {
        // §5.3.3: multi-pod (large-die) Scale-Out beats single-pod chips
        // on performance/TCO.
        let one_pod = dc(DesignKind::OnePod(CoreKind::OutOfOrder)).perf_per_tco();
        let multi = dc(DesignKind::ScaleOut(CoreKind::OutOfOrder)).perf_per_tco();
        assert!(multi > one_pod);
    }
}
