//! TCO model parameters (Table 5.2) and facility constants (§5.2.3).

/// All knobs of the EETCO-style model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoParams {
    /// Facility power budget in watts (20MW, §5.2.3).
    pub datacenter_power_w: f64,
    /// Power budget per rack in watts (17kW high-density racks).
    pub rack_power_w: f64,
    /// 1U servers per 42U rack.
    pub servers_per_rack: u32,
    /// Rack floor footprint including inter-rack space, m².
    pub rack_footprint_m2: f64,
    /// Floor-space overhead for cooling/power equipment (20%).
    pub equipment_space_overhead: f64,
    /// Infrastructure cost per m² of floor.
    pub infrastructure_usd_per_m2: f64,
    /// Cooling and power-provisioning equipment per watt of critical power.
    pub equipment_usd_per_w: f64,
    /// Server fan + power-supply inefficiency factor (SPUE).
    pub spue: f64,
    /// Facility power usage effectiveness.
    pub pue: f64,
    /// Electricity price per kWh.
    pub usd_per_kwh: f64,
    /// Personnel cost per rack per month.
    pub personnel_usd_per_rack_month: f64,
    /// Edge/aggregation/core network gear per rack: power and price.
    pub network_w_per_rack: f64,
    /// Network gear price per rack.
    pub network_usd_per_rack: f64,
    /// Motherboard power and price per 1U.
    pub motherboard_w: f64,
    /// Motherboard price per 1U.
    pub motherboard_usd: f64,
    /// Disks per 1U server.
    pub disks_per_server: u32,
    /// Power per disk.
    pub disk_w: f64,
    /// Price per disk.
    pub disk_usd: f64,
    /// Disk mean time to failure in years.
    pub disk_mttf_years: f64,
    /// DRAM power per GB.
    pub dram_w_per_gb: f64,
    /// DRAM price per GB.
    pub dram_usd_per_gb: f64,
    /// DRAM MTTF in years per GB module-equivalent.
    pub dram_mttf_years: f64,
    /// Processor MTTF in years.
    pub cpu_mttf_years: f64,
    /// Depreciation horizons in years.
    pub infrastructure_years: f64,
    /// Server hardware amortization in years.
    pub server_years: f64,
    /// Network gear amortization in years.
    pub network_years: f64,
}

impl TcoParams {
    /// The exact Table 5.2 / §5.2 parameter set.
    pub fn thesis() -> Self {
        TcoParams {
            datacenter_power_w: 20.0e6,
            rack_power_w: 17_000.0,
            servers_per_rack: 42,
            // 0.6m x 1.2m rack plus 1.2m inter-rack aisle share.
            rack_footprint_m2: 0.6 * 1.2 + 0.6 * 1.2,
            equipment_space_overhead: 0.20,
            infrastructure_usd_per_m2: 3000.0,
            equipment_usd_per_w: 12.5,
            spue: 1.3,
            pue: 1.3,
            usd_per_kwh: 0.07,
            personnel_usd_per_rack_month: 200.0,
            network_w_per_rack: 360.0,
            network_usd_per_rack: 10_000.0,
            motherboard_w: 25.0,
            motherboard_usd: 330.0,
            disks_per_server: 2,
            disk_w: 10.0,
            disk_usd: 180.0,
            disk_mttf_years: 100.0,
            dram_w_per_gb: 1.0,
            dram_usd_per_gb: 25.0,
            dram_mttf_years: 800.0,
            cpu_mttf_years: 30.0,
            infrastructure_years: 15.0,
            server_years: 3.0,
            network_years: 4.0,
        }
    }

    /// Power left for processors in one 1U server carrying `memory_gb` of
    /// DRAM (§5.2.3: rack budget minus network gear, fan/PSU overheads,
    /// motherboard, disks, and memory).
    pub fn processor_budget_w(&self, memory_gb: u32) -> f64 {
        let per_server_wall =
            (self.rack_power_w - self.network_w_per_rack) / f64::from(self.servers_per_rack);
        let usable = per_server_wall / self.spue;
        let fixed = self.motherboard_w
            + f64::from(self.disks_per_server) * self.disk_w
            + f64::from(memory_gb) * self.dram_w_per_gb;
        (usable - fixed).max(0.0)
    }

    /// Number of racks the facility can power.
    pub fn racks(&self) -> u32 {
        (self.datacenter_power_w / self.rack_power_w) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facility_holds_about_1176_racks() {
        assert_eq!(TcoParams::thesis().racks(), 1176);
    }

    #[test]
    fn processor_budget_matches_section_5_3_1_socket_counts() {
        let p = TcoParams::thesis();
        let budget = p.processor_budget_w(64);
        // §5.3.1: two conventional (94W) or as many as five 1pod (36W)
        // processors fit a 1U server at 64GB.
        assert_eq!((budget / 94.5) as u32, 2, "budget {budget}");
        assert_eq!((budget / 36.7) as u32, 5, "budget {budget}");
    }

    #[test]
    fn more_memory_leaves_less_processor_power() {
        let p = TcoParams::thesis();
        assert!(p.processor_budget_w(128) < p.processor_budget_w(32));
    }

    #[test]
    fn budget_never_goes_negative() {
        let p = TcoParams::thesis();
        assert_eq!(p.processor_budget_w(100_000), 0.0);
    }
}
