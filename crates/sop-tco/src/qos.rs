//! Provisioning a mixed-QoS datacenter (§5.3.1–§5.3.2).
//!
//! The thesis' chapter-5 narrative: out-of-order Scale-Out chips for
//! services that "demand tight latency guarantees and have a non-trivial
//! computational component", in-order Scale-Out chips "when the TCO
//! premium is justified, which may be the case for throughput workloads".
//! This module operationalizes that guidance: split the facility between
//! a latency-sensitive pool and a batch pool, pick the best chip for each
//! pool, and report the blended efficiency.

use crate::datacenter::Datacenter;
use crate::params::TcoParams;
use sop_core::designs::DesignKind;
use sop_tech::CoreKind;
use sop_workloads::QosClass;

/// The provisioning decision for one pool.
#[derive(Debug, Clone)]
pub struct PoolChoice {
    /// The pool's service class.
    pub qos: QosClass,
    /// Fraction of the facility given to the pool.
    pub fraction: f64,
    /// The chip chosen for the pool.
    pub datacenter: Datacenter,
}

/// A provisioned two-pool facility.
#[derive(Debug, Clone)]
pub struct MixedFleet {
    /// Latency pool and batch pool (fractions sum to 1).
    pub pools: Vec<PoolChoice>,
}

impl MixedFleet {
    /// Provisions a facility in which `latency_fraction` of the racks run
    /// latency-sensitive services. Candidate chips for the latency pool
    /// are the out-of-order designs (the thesis rules in-order cores out
    /// for tight-latency services); the batch pool considers everything
    /// and picks on performance/TCO alone.
    ///
    /// # Panics
    ///
    /// Panics if `latency_fraction` is outside `[0, 1]`.
    pub fn provision(latency_fraction: f64, params: &TcoParams, memory_gb: u32) -> MixedFleet {
        assert!(
            (0.0..=1.0).contains(&latency_fraction),
            "latency fraction must be in [0, 1]"
        );
        let latency_candidates = [
            DesignKind::Conventional,
            DesignKind::Tiled(CoreKind::OutOfOrder),
            DesignKind::OnePod(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::OutOfOrder),
        ];
        let batch_candidates = DesignKind::table_5_1();
        let best = |candidates: &[DesignKind]| {
            candidates
                .iter()
                .map(|&d| Datacenter::for_design(d, params, memory_gb))
                .max_by(|a, b| a.perf_per_tco().total_cmp(&b.perf_per_tco()))
                .expect("candidate list is non-empty")
        };
        MixedFleet {
            pools: vec![
                PoolChoice {
                    qos: QosClass::LatencySensitive,
                    fraction: latency_fraction,
                    datacenter: best(&latency_candidates),
                },
                PoolChoice {
                    qos: QosClass::Batch,
                    fraction: 1.0 - latency_fraction,
                    datacenter: best(&batch_candidates),
                },
            ],
        }
    }

    /// Blended performance per TCO dollar across the pools.
    pub fn perf_per_tco(&self) -> f64 {
        let perf: f64 = self
            .pools
            .iter()
            .map(|p| p.fraction * p.datacenter.performance)
            .sum();
        let tco: f64 = self
            .pools
            .iter()
            .map(|p| p.fraction * p.datacenter.tco.total_usd())
            .sum();
        perf / tco
    }

    /// The chip label chosen for a service class.
    pub fn chip_for(&self, qos: QosClass) -> &str {
        &self
            .pools
            .iter()
            .find(|p| p.qos == qos)
            .expect("both pools are provisioned")
            .datacenter
            .chip
            .label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(latency_fraction: f64) -> MixedFleet {
        MixedFleet::provision(latency_fraction, &TcoParams::thesis(), 64)
    }

    #[test]
    fn latency_pool_gets_an_out_of_order_scale_out_chip() {
        let f = fleet(0.5);
        assert_eq!(f.chip_for(QosClass::LatencySensitive), "Scale-Out (OoO)");
    }

    #[test]
    fn batch_pool_gets_the_in_order_scale_out_chip() {
        let f = fleet(0.5);
        assert_eq!(f.chip_for(QosClass::Batch), "Scale-Out (IO)");
    }

    #[test]
    fn more_batch_work_means_better_blended_efficiency() {
        // In-order pods buy more throughput per dollar, so shifting the
        // mix toward batch improves the blend (§5.3.1's 15% throughput
        // sacrifice of the OoO design, in reverse).
        let latency_heavy = fleet(0.9).perf_per_tco();
        let batch_heavy = fleet(0.1).perf_per_tco();
        assert!(batch_heavy > latency_heavy);
    }

    #[test]
    fn blend_interpolates_between_pools() {
        let all_latency = fleet(1.0).perf_per_tco();
        let all_batch = fleet(0.0).perf_per_tco();
        let mid = fleet(0.5).perf_per_tco();
        assert!(mid > all_latency.min(all_batch));
        assert!(mid < all_latency.max(all_batch));
    }

    #[test]
    #[should_panic(expected = "latency fraction")]
    fn bad_fraction_panics() {
        fleet(1.5);
    }
}
