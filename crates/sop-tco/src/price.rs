//! Processor price estimation (§5.2.2).
//!
//! The conventional chip is priced at its market value ($800, the cheapest
//! Xeon 5670 among online vendors). Every other chip is priced like the
//! thesis' Cadence InCyte flow: non-recurring engineering and mask costs
//! dominate, so price falls steeply with production volume, plus a
//! per-unit silicon cost that grows with die size, all marked up by a 50%
//! margin. The constants are fitted to the two anchors the thesis reports
//! at 200K units: $320 for the 158mm² single-pod chip and $370 for the
//! ~250–270mm² tiled and Scale-Out chips (a ~$50, 15% step for nearly
//! double the silicon, §5.2.2).

use sop_core::designs::DesignKind;

/// NRE + mask + design cost amortized over the production run, USD.
const NRE_USD: f64 = 24.0e6;
/// Manufacturing cost per mm² of (yielded) die.
const SILICON_USD_PER_MM2: f64 = 0.21;
/// Profit margin (selling price = cost / (1 - margin)).
const MARGIN: f64 = 0.5;
/// Production volume used for the headline estimates (§5.2.2).
pub const THESIS_VOLUME: f64 = 200_000.0;

/// Estimated selling price of a custom chip of `die_mm2` produced in
/// `volume` units.
///
/// # Panics
///
/// Panics if `volume` or `die_mm2` is not positive.
pub fn estimated_price_usd(die_mm2: f64, volume: f64) -> f64 {
    assert!(volume > 0.0, "volume must be positive");
    assert!(die_mm2 > 0.0, "die area must be positive");
    // Yield falls with area; fold it into a mild super-linear silicon term.
    let yield_factor = 1.0 + die_mm2 / 2000.0;
    let unit = SILICON_USD_PER_MM2 * die_mm2 * yield_factor;
    (NRE_USD / volume + unit) / (1.0 - MARGIN)
}

/// Price used for a design in the chapter-5 studies: market price for the
/// conventional chip, estimated price at the thesis volume otherwise.
pub fn market_price_usd(design: DesignKind, die_mm2: f64) -> f64 {
    match design {
        DesignKind::Conventional => 800.0,
        _ => estimated_price_usd(die_mm2, THESIS_VOLUME),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sop_tech::CoreKind;

    #[test]
    fn anchors_match_table_5_1() {
        // 1pod (OoO): 158mm² -> ~$320; Scale-Out/tiled ~263mm² -> ~$370.
        let one_pod = estimated_price_usd(158.0, THESIS_VOLUME);
        let sop = estimated_price_usd(263.0, THESIS_VOLUME);
        assert!((one_pod - 320.0).abs() < 15.0, "1pod {one_pod}");
        assert!((sop - 370.0).abs() < 15.0, "sop {sop}");
    }

    #[test]
    fn doubling_die_raises_price_modestly() {
        // §5.2.2: nearly doubling the die adds just ~15% because NRE
        // dominates.
        let small = estimated_price_usd(158.0, THESIS_VOLUME);
        let big = estimated_price_usd(280.0, THESIS_VOLUME);
        let step = big / small;
        assert!((1.05..1.30).contains(&step), "step {step}");
    }

    #[test]
    fn volume_dominates_price() {
        let low = estimated_price_usd(250.0, 40_000.0);
        let high = estimated_price_usd(250.0, 1_000_000.0);
        assert!(low > 3.0 * high, "low {low} high {high}");
    }

    #[test]
    fn conventional_uses_market_price() {
        assert_eq!(market_price_usd(DesignKind::Conventional, 276.0), 800.0);
        let sop = market_price_usd(DesignKind::ScaleOut(CoreKind::InOrder), 270.0);
        assert!(sop < 800.0);
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn zero_volume_panics() {
        estimated_price_usd(200.0, 0.0);
    }
}
