//! Datacenter total-cost-of-ownership analysis (chapter 5).
//!
//! The thesis evaluates server chips at the datacenter level with the
//! EETCO model: a 20MW facility of 17kW racks, each rack holding 42 1U
//! servers whose leftover power budget (after network gear, fans, power
//! conversion, motherboard, disks, and memory) is filled with processors.
//! TCO sums four expense categories — infrastructure, server and network
//! hardware, power, and maintenance — and the figure of merit is
//! performance per TCO dollar (Figs 5.1–5.5).
//!
//! # Example
//!
//! ```
//! use sop_core::designs::DesignKind;
//! use sop_tco::{Datacenter, TcoParams};
//! use sop_tech::{CoreKind, TechnologyNode};
//!
//! let params = TcoParams::thesis();
//! let conv = Datacenter::for_design(DesignKind::Conventional, &params, 64);
//! let sop = Datacenter::for_design(
//!     DesignKind::ScaleOut(CoreKind::InOrder),
//!     &params,
//!     64,
//! );
//! // The headline claim: 4.4x-7.1x better performance/TCO than
//! // conventional-processor datacenters.
//! let gain = sop.perf_per_tco() / conv.perf_per_tco();
//! assert!(gain > 4.0);
//! ```

pub mod datacenter;
pub mod derate;
pub mod params;
pub mod price;
pub mod qos;
pub mod sensitivity;

pub use datacenter::{Datacenter, TcoBreakdown};
pub use derate::{derated_performance, DegradationCurve};
pub use params::TcoParams;
pub use price::{estimated_price_usd, market_price_usd};
pub use qos::{MixedFleet, PoolChoice};
pub use sensitivity::{
    electricity_sweep, lifetime_sweep, ordering_is_robust, rack_power_sweep, SensitivityPoint,
};

use sop_tech::TechnologyNode;

/// The node at which chapter 5 compares chips.
pub const CHAPTER5_NODE: TechnologyNode = TechnologyNode::N40;
