//! Property-based tests (proptest) over the content-addressing layer:
//! canonicalization is order-insensitive and idempotent, and the spec
//! hash is a pure function of spec content.

use proptest::prelude::*;
use sop_exec::{canonicalize, hash_hex, parse_hash_hex, spec_hash};
use sop_obs::Json;

/// Keys drawn for generated spec objects.
const KEYS: [&str; 8] = [
    "kind", "workload", "cores", "llc_mb", "topology", "warm", "measure", "seed",
];

/// Builds an object from `(key index, value)` pairs, keeping the first
/// occurrence of each key so reordering cannot change which duplicate
/// wins.
fn object_from(pairs: &[(usize, u64)]) -> Json {
    let mut obj = Json::object();
    let mut used = [false; KEYS.len()];
    for &(k, v) in pairs {
        let k = k % KEYS.len();
        if !used[k] {
            used[k] = true;
            obj = obj.with(KEYS[k], v);
        }
    }
    obj
}

/// The same members as [`object_from`], inserted in reverse.
fn reversed_object_from(pairs: &[(usize, u64)]) -> Json {
    let Json::Obj(members) = object_from(pairs) else {
        unreachable!("object_from builds an object")
    };
    Json::Obj(members.into_iter().rev().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Member order never changes the hash, at any nesting depth.
    #[test]
    fn member_order_is_canonicalized_away(
        outer in prop::collection::vec((0usize..8, 0u64..1000), 1..8),
        inner in prop::collection::vec((0usize..8, 0u64..1000), 1..8),
    ) {
        let forward = object_from(&outer).with("nested", object_from(&inner));
        let backward = reversed_object_from(&outer).with("nested", reversed_object_from(&inner));
        // `with` appends, so "nested" sits at a different position too.
        prop_assert_eq!(spec_hash(&forward), spec_hash(&backward));
    }

    /// Canonicalization is idempotent, and hashing commutes with it.
    #[test]
    fn canonicalization_is_a_fixed_point(
        pairs in prop::collection::vec((0usize..8, 0u64..1000), 0..8),
        items in prop::collection::vec(0u64..1000, 0..5),
    ) {
        let spec = object_from(&pairs)
            .with("series", Json::Arr(items.into_iter().map(Json::UInt).collect()));
        let canon = canonicalize(&spec);
        prop_assert_eq!(canonicalize(&canon).to_compact_string(), canon.to_compact_string());
        prop_assert_eq!(spec_hash(&spec), spec_hash(&canon));
    }

    /// The hash is stable across repeated computation and distinguishes
    /// a spec from one with an extra member.
    #[test]
    fn hash_is_stable_and_content_sensitive(
        pairs in prop::collection::vec((0usize..8, 0u64..1000), 1..8),
        extra in 0u64..1000,
    ) {
        let spec = object_from(&pairs);
        prop_assert_eq!(spec_hash(&spec), spec_hash(&spec.clone()));
        let grown = spec.clone().with("unused_key", extra);
        prop_assert!(spec_hash(&grown) != spec_hash(&spec), "extra member must change the hash");
    }

    /// Hex rendering of hashes round-trips for arbitrary values.
    #[test]
    fn hash_hex_round_trips(h in 0u64..u64::MAX) {
        prop_assert_eq!(parse_hash_hex(&hash_hex(h)), Some(h));
    }
}
