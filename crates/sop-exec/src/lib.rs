//! # sop-exec — the experiment-execution engine
//!
//! Every result in this repo comes from evaluating a model or simulator
//! at a point: *(figure, workload, topology, core count, …) → numbers*.
//! This crate turns those evaluations into first-class, schedulable,
//! cacheable **jobs** so a full reproduction campaign runs as fast as
//! the hardware allows without changing a byte of output:
//!
//! * [`pool`] — a work-stealing pool of `std::thread` workers (no rayon;
//!   the build stays hermetic) whose results always come back in input
//!   order, so parallel runs print exactly what sequential runs print.
//! * [`hash`] — stable content addressing: FNV-1a over the canonical
//!   (key-sorted, compact) rendering of a job's JSON spec.
//! * [`cache`] — a two-layer (memory + disk) result store keyed by spec
//!   hash, with self-validating entries that detect truncation and
//!   tampering instead of trusting them.
//! * [`campaign`] — [`Job`]s, DAG wavefront scheduling, manifest-based
//!   checkpoint/resume, and the [`Exec`] handle binaries thread through
//!   their figure code.
//! * [`heartbeat`] — the live campaign telemetry stream: workers append
//!   NDJSON progress events to `<cache-dir>/progress.ndjson`, which
//!   `sop top` tails and aggregates into a [`TopSnapshot`].
//!
//! The engine never makes anything *less* deterministic: a campaign run
//! with one worker, eight workers, a cold cache, or a warm cache yields
//! identical results in identical order. Only wall-clock metrics (the
//! `exec.*` namespace, span timings) vary — and reports can strip those
//! via `sop_obs::report::stabilized` for byte-for-byte comparison.

pub mod cache;
pub mod campaign;
pub mod hash;
pub mod heartbeat;
pub mod pool;

pub use cache::{audit_dir, default_cache_dir, CacheAudit, ResultCache};
pub use campaign::{CampaignRun, Exec, ExecConfig, Job, JobFailure, JobOutcome, JobSource};
pub use hash::{canonicalize, hash_hex, parse_hash_hex, spec_hash};
pub use heartbeat::{Heartbeat, TopSnapshot, WorkerActivity};
pub use pool::{
    default_workers, detect_workers, run_ordered, run_ordered_resilient, JobError, WorkerStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sop_obs::Json;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sop-exec-lib-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn square_job(name: &str, x: u64) -> Job<'static> {
        Job::new(
            name.to_owned(),
            Json::object().with("kind", "square").with("x", x),
            |spec| {
                let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                Json::UInt(x * x)
            },
        )
    }

    #[test]
    fn campaign_results_are_in_job_order_for_any_worker_count() {
        let expected: Vec<Json> = (0..20).map(|x| Json::UInt(x * x)).collect();
        for workers in [1, 2, 8] {
            let exec = Exec::with_workers(workers);
            let jobs = (0..20).map(|x| square_job(&format!("sq{x}"), x)).collect();
            let run = exec.run_campaign("squares", jobs);
            assert_eq!(run.results, expected, "workers={workers}");
            assert_eq!(run.count(JobSource::Computed), 20);
        }
    }

    #[test]
    fn duplicate_specs_within_a_campaign_compute_once() {
        let calls = Arc::new(AtomicU64::new(0));
        let exec = Exec::sequential();
        let spec = Json::object().with("kind", "dup");
        let jobs = (0..4)
            .map(|i| {
                let calls = Arc::clone(&calls);
                Job::new(format!("dup{i}"), spec.clone(), move |_| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Json::UInt(9)
                })
            })
            .collect();
        let run = exec.run_campaign("dups", jobs);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(run.results.iter().all(|r| *r == Json::UInt(9)));
        assert_eq!(run.count(JobSource::Cached), 3);
    }

    #[test]
    fn dependencies_complete_before_dependents_run() {
        let exec = Exec::with_workers(4);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mk = |name: &str, stage: u64| {
            let order = Arc::clone(&order);
            Job::new(
                name.to_owned(),
                Json::object().with("kind", "dag").with("stage", stage),
                move |spec| {
                    let stage = spec.get("stage").and_then(Json::as_f64).expect("stage");
                    order.lock().expect("order").push(stage as u64);
                    Json::Num(stage)
                },
            )
        };
        // Jobs 0 and 1 are stage 0; job 2 depends on both.
        let jobs = vec![mk("a", 0), mk("b", 1), mk("c", 2).after(&[0, 1])];
        let run = exec.run_campaign("dag", jobs);
        assert_eq!(run.results.len(), 3);
        let order = order.lock().expect("order").clone();
        let pos = |s: u64| order.iter().position(|&x| x == s).expect("ran");
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn a_cycle_panics_instead_of_hanging() {
        let exec = Exec::sequential();
        let jobs = vec![
            Job::new("a", Json::object().with("k", 1u64), |_| Json::Null).after(&[1]),
            Job::new("b", Json::object().with("k", 2u64), |_| Json::Null).after(&[0]),
        ];
        exec.run_campaign("cycle", jobs);
    }

    #[test]
    fn resume_replays_manifest_jobs_from_the_cache() {
        let dir = scratch_dir("resume");
        let mk_exec = |resume| {
            Exec::new(ExecConfig {
                jobs: 1,
                cache_dir: Some(dir.clone()),
                resume,
                ..ExecConfig::default()
            })
        };
        let calls = Arc::new(AtomicU64::new(0));
        fn mk_jobs(calls: &Arc<AtomicU64>) -> Vec<Job<'static>> {
            (0..5u64)
                .map(|x| {
                    let calls = Arc::clone(calls);
                    Job::new(
                        format!("r{x}"),
                        Json::object().with("kind", "resume").with("x", x),
                        move |spec| {
                            calls.fetch_add(1, Ordering::Relaxed);
                            let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                            Json::UInt(x + 100)
                        },
                    )
                })
                .collect()
        }

        let first = mk_exec(false).run_campaign("resume-test", mk_jobs(&calls));
        assert_eq!(calls.load(Ordering::Relaxed), 5);
        assert_eq!(first.count(JobSource::Computed), 5);

        // A resumed run must not invoke a single closure.
        let second = mk_exec(true).run_campaign("resume-test", mk_jobs(&calls));
        assert_eq!(calls.load(Ordering::Relaxed), 5, "no recompute on resume");
        assert_eq!(second.count(JobSource::Resumed), 5);
        assert_eq!(second.results, first.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_recomputes_everything() {
        let calls = Arc::new(AtomicU64::new(0));
        let exec = Exec::new(ExecConfig {
            jobs: 1,
            cache_dir: None,
            no_cache: true,
            ..ExecConfig::default()
        });
        let spec = Json::object().with("kind", "nocache");
        let jobs = (0..3)
            .map(|i| {
                let calls = Arc::clone(&calls);
                Job::new(format!("n{i}"), spec.clone(), move |_| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Json::UInt(1)
                })
            })
            .collect();
        let run = exec.run_campaign("nocache", jobs);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(run.count(JobSource::Computed), 3);
    }

    #[test]
    fn failed_jobs_yield_partial_results_and_fail_their_dependents() {
        let exec = Exec::with_workers(2);
        let mut jobs: Vec<Job<'static>> = (0..6u64)
            .map(|x| {
                Job::new(
                    format!("f{x}"),
                    Json::object().with("kind", "fail-some").with("x", x),
                    move |_| {
                        if x == 2 {
                            panic!("simulated fault in job 2");
                        }
                        Json::UInt(x)
                    },
                )
            })
            .collect();
        // Job 6 depends on the failing job 2; job 7 on the healthy job 0.
        jobs.push(
            Job::new("needs-f2", Json::object().with("kind", "dep-bad"), |_| {
                panic!("must never run")
            })
            .after(&[2]),
        );
        jobs.push(
            Job::new("needs-f0", Json::object().with("kind", "dep-good"), |_| {
                Json::UInt(100)
            })
            .after(&[0]),
        );
        let run = exec.run_campaign("partial", jobs);
        assert_eq!(run.results.len(), 8);
        assert_eq!(run.failures.len(), 2, "{:?}", run.failures);
        assert_eq!(run.results[2], Json::Null);
        assert_eq!(run.results[6], Json::Null);
        assert_eq!(run.results[7], Json::UInt(100));
        assert!(run.failures[0].error.contains("simulated fault"));
        assert!(run.failures[1].error.contains("dependency failed"));
        assert_eq!(run.count(JobSource::Failed), 2);
        assert!(!run.is_fully_green());
        assert_eq!(exec.failures().len(), 2);
        let m = exec.metrics_snapshot();
        assert_eq!(m.counter("exec.jobs.failed"), 2);
    }

    #[test]
    fn transient_jobs_retry_with_backoff_until_they_succeed() {
        let attempts = Arc::new(AtomicU64::new(0));
        let exec = Exec::sequential();
        let job = {
            let attempts = Arc::clone(&attempts);
            Job::new("flaky", Json::object().with("kind", "flaky"), move |_| {
                // Fails twice, succeeds on the third attempt — within
                // the default retry budget of 2.
                if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient failure");
                }
                Json::UInt(7)
            })
            .transient()
        };
        let run = exec.run_campaign("flaky", vec![job]);
        assert!(run.is_fully_green(), "{:?}", run.failures);
        assert_eq!(run.results[0], Json::UInt(7));
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert_eq!(exec.metrics_snapshot().counter("exec.job.retries"), 2);
    }

    #[test]
    fn non_transient_jobs_do_not_retry() {
        let attempts = Arc::new(AtomicU64::new(0));
        let exec = Exec::sequential();
        let job = {
            let attempts = Arc::clone(&attempts);
            Job::new("det", Json::object().with("kind", "det"), move |_| {
                attempts.fetch_add(1, Ordering::Relaxed);
                panic!("deterministic failure");
            })
        };
        let run = exec.run_campaign("det", vec![job]);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(attempts.load(Ordering::Relaxed), 1, "no retry");
    }

    #[test]
    fn resume_recomputes_only_the_failed_subset() {
        let dir = scratch_dir("resume-failed");
        let mk_exec = |resume| {
            Exec::new(ExecConfig {
                jobs: 1,
                cache_dir: Some(dir.clone()),
                resume,
                ..ExecConfig::default()
            })
        };
        // First run: jobs 1 and 3 fail; the other three succeed.
        let calls = Arc::new(AtomicU64::new(0));
        let mk_jobs = |fail: &'static [u64], calls: &Arc<AtomicU64>| -> Vec<Job<'static>> {
            (0..5u64)
                .map(|x| {
                    let calls = Arc::clone(calls);
                    Job::new(
                        format!("rf{x}"),
                        Json::object().with("kind", "resume-failed").with("x", x),
                        move |spec| {
                            calls.fetch_add(1, Ordering::Relaxed);
                            if fail.contains(&x) {
                                panic!("injected fault in job {x}");
                            }
                            let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                            Json::UInt(x * 10)
                        },
                    )
                })
                .collect()
        };
        let first = mk_exec(false).run_campaign("resume-failed", mk_jobs(&[1, 3], &calls));
        assert_eq!(first.failures.len(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 5);

        // Resumed run with the fault cleared: the three successes replay
        // from the manifest + cache; only jobs 1 and 3 recompute.
        let calls2 = Arc::new(AtomicU64::new(0));
        let second = mk_exec(true).run_campaign("resume-failed", mk_jobs(&[], &calls2));
        assert!(second.is_fully_green(), "{:?}", second.failures);
        assert_eq!(
            calls2.load(Ordering::Relaxed),
            2,
            "resume must recompute exactly the failed subset"
        );
        assert_eq!(second.count(JobSource::Resumed), 3);
        assert_eq!(second.count(JobSource::Computed), 2);
        let expected: Vec<Json> = (0..5u64).map(|x| Json::UInt(x * 10)).collect();
        assert_eq!(second.results, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_summarize_the_run() {
        let exec = Exec::sequential();
        let jobs = (0..6).map(|x| square_job(&format!("m{x}"), x)).collect();
        exec.run_campaign("metrics", jobs);
        let m = exec.metrics_snapshot();
        assert_eq!(m.counter("exec.jobs.completed"), 6);
        assert_eq!(m.counter("exec.jobs.computed"), 6);
        assert_eq!(m.counter("exec.worker.0.jobs"), 6);
        assert_eq!(m.gauge("exec.workers"), Some(1.0));
        // 6 distinct specs: each missed once before computing.
        assert_eq!(m.counter("exec.cache.misses"), 6);
    }

    #[test]
    fn exec_config_parses_standard_flags() {
        let args: Vec<String> = ["prog", "--quick", "--jobs", "4", "--no-cache", "--resume"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let cfg = ExecConfig::from_args(&args);
        assert_eq!(cfg.jobs, 4);
        assert!(cfg.no_cache);
        assert!(cfg.resume);
        let none = ExecConfig::from_args(&["prog".to_owned()]);
        assert_eq!(none.jobs, 0);
        assert!(!none.no_cache && !none.resume);
    }
}
