//! # sop-exec — the experiment-execution engine
//!
//! Every result in this repo comes from evaluating a model or simulator
//! at a point: *(figure, workload, topology, core count, …) → numbers*.
//! This crate turns those evaluations into first-class, schedulable,
//! cacheable **jobs** so a full reproduction campaign runs as fast as
//! the hardware allows without changing a byte of output:
//!
//! * [`pool`] — a work-stealing pool of `std::thread` workers (no rayon;
//!   the build stays hermetic) whose results always come back in input
//!   order, so parallel runs print exactly what sequential runs print.
//! * [`hash`] — stable content addressing: FNV-1a over the canonical
//!   (key-sorted, compact) rendering of a job's JSON spec.
//! * [`cache`] — a two-layer (memory + disk) result store keyed by spec
//!   hash, with self-validating entries that detect truncation and
//!   tampering instead of trusting them.
//! * [`campaign`] — [`Job`]s, DAG wavefront scheduling, manifest-based
//!   checkpoint/resume, and the [`Exec`] handle binaries thread through
//!   their figure code.
//!
//! The engine never makes anything *less* deterministic: a campaign run
//! with one worker, eight workers, a cold cache, or a warm cache yields
//! identical results in identical order. Only wall-clock metrics (the
//! `exec.*` namespace, span timings) vary — and reports can strip those
//! via `sop_obs::report::stabilized` for byte-for-byte comparison.

pub mod cache;
pub mod campaign;
pub mod hash;
pub mod pool;

pub use cache::{default_cache_dir, ResultCache};
pub use campaign::{CampaignRun, Exec, ExecConfig, Job, JobOutcome, JobSource};
pub use hash::{canonicalize, hash_hex, parse_hash_hex, spec_hash};
pub use pool::{default_workers, run_ordered, WorkerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use sop_obs::Json;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sop-exec-lib-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn square_job(name: &str, x: u64) -> Job<'static> {
        Job::new(
            name.to_owned(),
            Json::object().with("kind", "square").with("x", x),
            |spec| {
                let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                Json::UInt(x * x)
            },
        )
    }

    #[test]
    fn campaign_results_are_in_job_order_for_any_worker_count() {
        let expected: Vec<Json> = (0..20).map(|x| Json::UInt(x * x)).collect();
        for workers in [1, 2, 8] {
            let exec = Exec::with_workers(workers);
            let jobs = (0..20).map(|x| square_job(&format!("sq{x}"), x)).collect();
            let run = exec.run_campaign("squares", jobs);
            assert_eq!(run.results, expected, "workers={workers}");
            assert_eq!(run.count(JobSource::Computed), 20);
        }
    }

    #[test]
    fn duplicate_specs_within_a_campaign_compute_once() {
        let calls = AtomicU64::new(0);
        let exec = Exec::sequential();
        let spec = Json::object().with("kind", "dup");
        let jobs = (0..4)
            .map(|i| {
                Job::new(format!("dup{i}"), spec.clone(), |_| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Json::UInt(9)
                })
            })
            .collect();
        let run = exec.run_campaign("dups", jobs);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(run.results.iter().all(|r| *r == Json::UInt(9)));
        assert_eq!(run.count(JobSource::Cached), 3);
    }

    #[test]
    fn dependencies_complete_before_dependents_run() {
        let exec = Exec::with_workers(4);
        let order = std::sync::Mutex::new(Vec::new());
        let mk = |name: &str, stage: u64| {
            let order = &order;
            Job::new(
                name.to_owned(),
                Json::object().with("kind", "dag").with("stage", stage),
                move |spec| {
                    let stage = spec.get("stage").and_then(Json::as_f64).expect("stage");
                    order.lock().expect("order").push(stage as u64);
                    Json::Num(stage)
                },
            )
        };
        // Jobs 0 and 1 are stage 0; job 2 depends on both.
        let jobs = vec![mk("a", 0), mk("b", 1), mk("c", 2).after(&[0, 1])];
        let run = exec.run_campaign("dag", jobs);
        assert_eq!(run.results.len(), 3);
        let order = order.into_inner().expect("order");
        let pos = |s: u64| order.iter().position(|&x| x == s).expect("ran");
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn a_cycle_panics_instead_of_hanging() {
        let exec = Exec::sequential();
        let jobs = vec![
            Job::new("a", Json::object().with("k", 1u64), |_| Json::Null).after(&[1]),
            Job::new("b", Json::object().with("k", 2u64), |_| Json::Null).after(&[0]),
        ];
        exec.run_campaign("cycle", jobs);
    }

    #[test]
    fn resume_replays_manifest_jobs_from_the_cache() {
        let dir = scratch_dir("resume");
        let mk_exec = |resume| {
            Exec::new(ExecConfig {
                jobs: 1,
                cache_dir: Some(dir.clone()),
                no_cache: false,
                resume,
            })
        };
        let calls = AtomicU64::new(0);
        fn mk_jobs(calls: &AtomicU64) -> Vec<Job<'_>> {
            (0..5u64)
                .map(|x| {
                    Job::new(
                        format!("r{x}"),
                        Json::object().with("kind", "resume").with("x", x),
                        move |spec| {
                            calls.fetch_add(1, Ordering::Relaxed);
                            let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                            Json::UInt(x + 100)
                        },
                    )
                })
                .collect()
        }

        let first = mk_exec(false).run_campaign("resume-test", mk_jobs(&calls));
        assert_eq!(calls.load(Ordering::Relaxed), 5);
        assert_eq!(first.count(JobSource::Computed), 5);

        // A resumed run must not invoke a single closure.
        let second = mk_exec(true).run_campaign("resume-test", mk_jobs(&calls));
        assert_eq!(calls.load(Ordering::Relaxed), 5, "no recompute on resume");
        assert_eq!(second.count(JobSource::Resumed), 5);
        assert_eq!(second.results, first.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_recomputes_everything() {
        let calls = AtomicU64::new(0);
        let exec = Exec::new(ExecConfig {
            jobs: 1,
            cache_dir: None,
            no_cache: true,
            resume: false,
        });
        let spec = Json::object().with("kind", "nocache");
        let jobs = (0..3)
            .map(|i| {
                Job::new(format!("n{i}"), spec.clone(), |_| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Json::UInt(1)
                })
            })
            .collect();
        let run = exec.run_campaign("nocache", jobs);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(run.count(JobSource::Computed), 3);
    }

    #[test]
    fn metrics_summarize_the_run() {
        let exec = Exec::sequential();
        let jobs = (0..6).map(|x| square_job(&format!("m{x}"), x)).collect();
        exec.run_campaign("metrics", jobs);
        let m = exec.metrics_snapshot();
        assert_eq!(m.counter("exec.jobs.completed"), 6);
        assert_eq!(m.counter("exec.jobs.computed"), 6);
        assert_eq!(m.counter("exec.worker.0.jobs"), 6);
        assert_eq!(m.gauge("exec.workers"), Some(1.0));
        // 6 distinct specs: each missed once before computing.
        assert_eq!(m.counter("exec.cache.misses"), 6);
    }

    #[test]
    fn exec_config_parses_standard_flags() {
        let args: Vec<String> = ["prog", "--quick", "--jobs", "4", "--no-cache", "--resume"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let cfg = ExecConfig::from_args(&args);
        assert_eq!(cfg.jobs, 4);
        assert!(cfg.no_cache);
        assert!(cfg.resume);
        let none = ExecConfig::from_args(&["prog".to_owned()]);
        assert_eq!(none.jobs, 0);
        assert!(!none.no_cache && !none.resume);
    }
}
