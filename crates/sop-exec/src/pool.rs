//! A work-stealing pool of `std::thread` workers.
//!
//! The hermetic build has no rayon, so this module hand-rolls the small
//! slice of it the campaign runner needs: run `n` independent closures on
//! `w` workers, let idle workers steal from busy ones, and return the
//! results **in input order** so downstream output is byte-identical
//! regardless of how the schedule played out.
//!
//! Each worker owns a deque seeded round-robin with a share of the items.
//! Workers pop their own deque from the front (cache-friendly: a worker
//! runs its share in order) and steal from a victim's back (stealing the
//! work its owner would reach last). All deques are mutex-guarded — at
//! experiment granularity (each job simulates thousands of cycles or
//! evaluates a full analytic model) lock traffic is noise, and the
//! implementation stays obviously correct.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What one worker did during a [`run_ordered`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed (own + stolen).
    pub executed: u64,
    /// Of those, jobs stolen from another worker's deque.
    pub stolen: u64,
}

/// Detects the number of workers for "all cores", and whether detection
/// failed. On failure the pool degrades to one worker; callers should
/// surface the second component (see `exec.workers.fallback`) so degraded
/// parallelism is observable rather than silent.
pub fn detect_workers() -> (usize, bool) {
    match std::thread::available_parallelism() {
        Ok(n) => (n.get(), false),
        Err(_) => (1, true),
    }
}

/// The number of workers to use when the caller asked for "all cores".
pub fn default_workers() -> usize {
    detect_workers().0
}

/// Why a job run under [`run_ordered_resilient`] produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's closure panicked; the payload's message is preserved.
    Panicked(String),
    /// The job exceeded the per-job timeout. The worker thread running it
    /// is abandoned (it cannot be interrupted), but the pool keeps
    /// processing the remaining jobs on the other workers.
    TimedOut(Duration),
    /// The job was skipped because a dependency failed.
    DepFailed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobError::TimedOut(t) => write!(f, "timed out after {:.1}s", t.as_secs_f64()),
            JobError::DepFailed(dep) => write!(f, "dependency failed: {dep}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Fault-isolating variant of [`run_ordered`]: every job runs under
/// `catch_unwind`, so one panicking job yields `Err(JobError::Panicked)`
/// in its own slot instead of poisoning the pool and discarding everyone
/// else's results. With `timeout` set, a watchdog marks jobs that run too
/// long as `Err(JobError::TimedOut)` and spawns a replacement worker so
/// throughput is preserved; the hung thread itself is abandoned (detached)
/// and its eventual result, if any, is discarded.
///
/// Unlike [`run_ordered`] the workers are detached threads pulling from a
/// single shared queue (abandoning a hung job is impossible with scoped
/// threads, whose join blocks on it), hence the `'static` bounds. Results
/// still come back in input order.
pub fn run_ordered_resilient<T, R, F>(
    workers: usize,
    items: Vec<T>,
    timeout: Option<Duration>,
    f: F,
) -> (Vec<Result<R, JobError>>, Vec<WorkerStats>)
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 && timeout.is_none() {
        // Sequential fast path: no threads, but the same panic isolation.
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                catch_unwind(AssertUnwindSafe(|| f(i, t)))
                    .map_err(|p| JobError::Panicked(panic_message(p)))
            })
            .collect();
        let stats = vec![WorkerStats {
            executed: n as u64,
            stolen: 0,
        }];
        return (results, stats);
    }

    let queue: Arc<Mutex<VecDeque<(usize, T)>>> =
        Arc::new(Mutex::new(items.into_iter().enumerate().collect()));
    let started: Arc<Mutex<Vec<Option<Instant>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let stats: Arc<Mutex<Vec<WorkerStats>>> =
        Arc::new(Mutex::new(vec![WorkerStats::default(); workers]));
    let f = Arc::new(f);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, JobError>)>();

    let spawn_worker = |id: usize| {
        let queue = Arc::clone(&queue);
        let started = Arc::clone(&started);
        let stats = Arc::clone(&stats);
        let f = Arc::clone(&f);
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            let Some((idx, item)) = queue.lock().expect("queue lock").pop_front() else {
                break;
            };
            started.lock().expect("started lock")[idx] = Some(Instant::now());
            let result = catch_unwind(AssertUnwindSafe(|| f(idx, item)))
                .map_err(|p| JobError::Panicked(panic_message(p)));
            {
                let mut s = stats.lock().expect("stats lock");
                if s.len() <= id {
                    s.resize(id + 1, WorkerStats::default());
                }
                s[id].executed += 1;
            }
            // A send can only fail if the collector is gone (all live
            // slots already resolved); the late result is then discarded.
            if tx.send((idx, result)).is_err() {
                break;
            }
        });
    };
    for w in 0..workers {
        spawn_worker(w);
    }

    let mut slots: Vec<Option<Result<R, JobError>>> = (0..n).map(|_| None).collect();
    let mut remaining = n;
    let mut next_worker_id = workers;
    // The watchdog tick bounds how stale a timeout decision can be; the
    // tick itself costs nothing when jobs finish promptly.
    let tick = timeout.map_or(Duration::from_millis(200), |t| {
        t.min(Duration::from_millis(50))
    });
    while remaining > 0 {
        match rx.recv_timeout(tick) {
            Ok((idx, result)) => {
                // `None` guards against a late result racing the watchdog:
                // first writer wins, duplicates are discarded.
                if slots[idx].is_none() {
                    slots[idx] = Some(result);
                    remaining -= 1;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let Some(limit) = timeout else { continue };
                let overdue: Vec<usize> = {
                    let started = started.lock().expect("started lock");
                    (0..n)
                        .filter(|&i| {
                            slots[i].is_none() && started[i].is_some_and(|at| at.elapsed() > limit)
                        })
                        .collect()
                };
                for idx in overdue {
                    slots[idx] = Some(Err(JobError::TimedOut(limit)));
                    remaining -= 1;
                    // The thread stuck on this job is abandoned; spawn a
                    // replacement so parallelism does not decay.
                    spawn_worker(next_worker_id);
                    next_worker_id += 1;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable in practice: the collector itself holds a
                // sender, so the channel cannot disconnect. Kept as a
                // defensive exit so a future refactor cannot hang here.
                for slot in slots.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(JobError::Panicked("worker thread died".into())));
                    remaining -= 1;
                }
            }
        }
    }

    let results = slots
        .into_iter()
        .map(|s| s.expect("every slot resolved"))
        .collect();
    let stats = stats.lock().expect("stats lock").clone();
    (results, stats)
}

/// Runs `f` over every item on `workers` threads and returns the results
/// in input order, plus per-worker statistics. `f` receives the item's
/// input index alongside the item.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_ordered<T, R, F>(workers: usize, items: Vec<T>, f: F) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        // Sequential fast path: no threads, same observable results.
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        let stats = vec![WorkerStats {
            executed: n as u64,
            stolen: 0,
        }];
        return (results, stats);
    }

    // Deal items round-robin so early and late items spread evenly; each
    // deque entry keeps its input index for ordered reassembly.
    let mut deques: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let stats: Vec<Mutex<WorkerStats>> = (0..workers).map(|_| Mutex::default()).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let stats = &stats;
            let f = &f;
            scope.spawn(move || {
                let mut local = WorkerStats::default();
                loop {
                    // Own work first (front), then steal (victim's back).
                    let mut job = deques[w].lock().expect("deque lock").pop_front();
                    let mut stolen = false;
                    if job.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            job = deques[victim].lock().expect("deque lock").pop_back();
                            if job.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some((idx, item)) = job else { break };
                    local.executed += 1;
                    local.stolen += u64::from(stolen);
                    // A send can only fail if the receiver is gone, which
                    // means the scope is unwinding from a panic already.
                    let _ = tx.send((idx, f(idx, item)));
                }
                *stats[w].lock().expect("stats lock") = local;
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every job sent a result"))
        .collect();
    let stats = stats
        .into_iter()
        .map(|m| m.into_inner().expect("stats lock"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let (out, stats) = run_ordered(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<u64>>());
            let executed: u64 = stats.iter().map(|s| s.executed).sum();
            assert_eq!(executed, 100);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (_, _) = run_ordered(4, (0..257).collect::<Vec<u32>>(), |_, _| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn imbalanced_work_gets_stolen() {
        // Worker 0's share (round-robin: even indices) is made slow; the
        // other workers finish their own items and must steal to keep the
        // total executed count right.
        let (out, stats) = run_ordered(4, (0..64u64).collect::<Vec<_>>(), |i, x| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out.len(), 64);
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 64);
        // Steal counts are schedule-dependent; the invariant is that they
        // are consistent, not that any particular steal happened.
        assert!(stats.iter().all(|s| s.stolen <= s.executed));
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = run_ordered(8, Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 0);
    }

    #[test]
    fn more_workers_than_items_clamps() {
        let (out, stats) = run_ordered(16, vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert!(stats.len() <= 3);
    }

    #[test]
    fn resilient_isolates_panics_to_their_own_slot() {
        for workers in [1, 4] {
            let (out, stats) =
                run_ordered_resilient(workers, (0..20u64).collect::<Vec<_>>(), None, |i, x| {
                    assert_eq!(i as u64, x);
                    if x % 5 == 3 {
                        panic!("job {x} exploded");
                    }
                    x * 2
                });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    match r {
                        Err(JobError::Panicked(msg)) => {
                            assert!(msg.contains("exploded"), "got {msg:?}")
                        }
                        other => panic!("expected a panic error, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.as_ref().expect("success"), &((i as u64) * 2));
                }
            }
            assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 20);
        }
    }

    #[test]
    fn resilient_watchdog_times_out_hung_jobs_and_finishes_the_rest() {
        let started = Instant::now();
        let (out, _) = run_ordered_resilient(
            2,
            (0..8u64).collect::<Vec<_>>(),
            Some(Duration::from_millis(100)),
            |_, x| {
                if x == 2 {
                    // Far longer than the timeout: the watchdog must fire
                    // long before this job would complete on its own.
                    std::thread::sleep(Duration::from_secs(30));
                }
                x + 1
            },
        );
        assert!(
            matches!(out[2], Err(JobError::TimedOut(_))),
            "got {:?}",
            out[2]
        );
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(r.as_ref().expect("success"), &((i as u64) + 1));
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "the pool must not wait out the hung job"
        );
    }

    #[test]
    fn resilient_matches_run_ordered_on_clean_jobs() {
        let items: Vec<u64> = (0..50).collect();
        let (clean, _) = run_ordered(3, items.clone(), |_, x| x * x);
        let (resilient, _) = run_ordered_resilient(3, items, None, |_, x| x * x);
        let unwrapped: Vec<u64> = resilient.into_iter().map(|r| r.expect("success")).collect();
        assert_eq!(clean, unwrapped);
    }

    #[test]
    fn resilient_empty_input_is_fine() {
        let (out, _) = run_ordered_resilient(4, Vec::<u8>::new(), None, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn job_error_displays_cleanly() {
        assert_eq!(
            JobError::Panicked("boom".into()).to_string(),
            "panicked: boom"
        );
        assert_eq!(
            JobError::TimedOut(Duration::from_secs(3)).to_string(),
            "timed out after 3.0s"
        );
        assert_eq!(
            JobError::DepFailed("fig4.7:sim".into()).to_string(),
            "dependency failed: fig4.7:sim"
        );
    }
}
