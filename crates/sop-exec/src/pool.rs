//! A work-stealing pool of `std::thread` workers.
//!
//! The hermetic build has no rayon, so this module hand-rolls the small
//! slice of it the campaign runner needs: run `n` independent closures on
//! `w` workers, let idle workers steal from busy ones, and return the
//! results **in input order** so downstream output is byte-identical
//! regardless of how the schedule played out.
//!
//! Each worker owns a deque seeded round-robin with a share of the items.
//! Workers pop their own deque from the front (cache-friendly: a worker
//! runs its share in order) and steal from a victim's back (stealing the
//! work its owner would reach last). All deques are mutex-guarded — at
//! experiment granularity (each job simulates thousands of cycles or
//! evaluates a full analytic model) lock traffic is noise, and the
//! implementation stays obviously correct.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// What one worker did during a [`run_ordered`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed (own + stolen).
    pub executed: u64,
    /// Of those, jobs stolen from another worker's deque.
    pub stolen: u64,
}

/// The number of workers to use when the caller asked for "all cores".
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item on `workers` threads and returns the results
/// in input order, plus per-worker statistics. `f` receives the item's
/// input index alongside the item.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_ordered<T, R, F>(workers: usize, items: Vec<T>, f: F) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        // Sequential fast path: no threads, same observable results.
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        let stats = vec![WorkerStats {
            executed: n as u64,
            stolen: 0,
        }];
        return (results, stats);
    }

    // Deal items round-robin so early and late items spread evenly; each
    // deque entry keeps its input index for ordered reassembly.
    let mut deques: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let stats: Vec<Mutex<WorkerStats>> = (0..workers).map(|_| Mutex::default()).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let stats = &stats;
            let f = &f;
            scope.spawn(move || {
                let mut local = WorkerStats::default();
                loop {
                    // Own work first (front), then steal (victim's back).
                    let mut job = deques[w].lock().expect("deque lock").pop_front();
                    let mut stolen = false;
                    if job.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            job = deques[victim].lock().expect("deque lock").pop_back();
                            if job.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some((idx, item)) = job else { break };
                    local.executed += 1;
                    local.stolen += u64::from(stolen);
                    // A send can only fail if the receiver is gone, which
                    // means the scope is unwinding from a panic already.
                    let _ = tx.send((idx, f(idx, item)));
                }
                *stats[w].lock().expect("stats lock") = local;
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every job sent a result"))
        .collect();
    let stats = stats
        .into_iter()
        .map(|m| m.into_inner().expect("stats lock"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let (out, stats) = run_ordered(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<u64>>());
            let executed: u64 = stats.iter().map(|s| s.executed).sum();
            assert_eq!(executed, 100);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (_, _) = run_ordered(4, (0..257).collect::<Vec<u32>>(), |_, _| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn imbalanced_work_gets_stolen() {
        // Worker 0's share (round-robin: even indices) is made slow; the
        // other workers finish their own items and must steal to keep the
        // total executed count right.
        let (out, stats) = run_ordered(4, (0..64u64).collect::<Vec<_>>(), |i, x| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out.len(), 64);
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 64);
        // Steal counts are schedule-dependent; the invariant is that they
        // are consistent, not that any particular steal happened.
        assert!(stats.iter().all(|s| s.stolen <= s.executed));
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = run_ordered(8, Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), 0);
    }

    #[test]
    fn more_workers_than_items_clamps() {
        let (out, stats) = run_ordered(16, vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert!(stats.len() <= 3);
    }
}
