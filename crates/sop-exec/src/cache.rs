//! Content-addressed result cache.
//!
//! Keys are [`spec_hash`](crate::hash::spec_hash)es of canonicalized job
//! specs; values are the jobs' JSON results. Two layers:
//!
//! * an in-memory map, so a spec evaluated twice within one process
//!   (e.g. the same simulation point feeding two figures) runs once;
//! * a disk layer under the cache directory (default `target/sop-cache/`,
//!   override with `SOP_CACHE_DIR`), one file per result, so repeated
//!   `repro`/`ablation`/`sop sweep` invocations skip completed work.
//!
//! Disk entries are self-validating: each file records the schema tag,
//! the canonical spec, and the spec's hash. A read re-hashes the embedded
//! spec and compares it to both the stored hash and the file name, so a
//! truncated, corrupted, or hand-edited entry is *detected and
//! recomputed*, never trusted.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sop_obs::{json, Json};

use crate::hash::{hash_hex, spec_hash};

/// Cache entry layout version. Bump when the entry format (not the job
/// results) changes; old entries then read as invalid and recompute.
pub const CACHE_SCHEMA: &str = "sop-cache/v1";

/// A two-layer (memory + optional disk) content-addressed result store.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, Json>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalid: AtomicU64,
}

/// The default on-disk cache directory: `$SOP_CACHE_DIR` if set,
/// otherwise `target/sop-cache` under the current directory.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("SOP_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("sop-cache"))
}

impl ResultCache {
    /// A memory-only cache (results die with the process).
    pub fn in_memory() -> Self {
        ResultCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
        }
    }

    /// A cache persisted under `dir` (created on first write) with the
    /// in-memory layer on top.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: Some(dir.into()),
            ..ResultCache::in_memory()
        }
    }

    /// The disk directory, if this cache persists.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Cache hits so far (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Disk entries that existed but failed validation (truncated,
    /// corrupt, or hash-mismatched) and were therefore recomputed.
    pub fn invalid(&self) -> u64 {
        self.invalid.load(Ordering::Relaxed)
    }

    fn entry_path(&self, hash: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", hash_hex(hash))))
    }

    /// Looks up the result for `hash`, checking memory then disk. A disk
    /// hit is promoted into the memory layer. Counts a hit or miss.
    pub fn get(&self, hash: u64) -> Option<Json> {
        if let Some(v) = self.mem.lock().expect("cache lock").get(&hash) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v.clone());
        }
        if let Some(path) = self.entry_path(hash) {
            match self.read_disk(&path, hash) {
                Some(result) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.mem
                        .lock()
                        .expect("cache lock")
                        .insert(hash, result.clone());
                    return Some(result);
                }
                None => {
                    if path.exists() {
                        self.invalid.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Validates and extracts a disk entry; `None` if absent or poisoned.
    fn read_disk(&self, path: &Path, hash: u64) -> Option<Json> {
        let text = std::fs::read_to_string(path).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(CACHE_SCHEMA) {
            return None;
        }
        let spec = doc.get("spec")?;
        // The embedded spec must hash to the stored hash AND to the hash
        // we asked for; a file renamed onto another key fails here.
        let recomputed = spec_hash(spec);
        let stored = doc
            .get("hash")
            .and_then(Json::as_str)
            .and_then(crate::hash::parse_hash_hex)?;
        if recomputed != hash || stored != hash {
            return None;
        }
        doc.get("result").cloned()
    }

    /// Stores `result` for `hash` in memory and (when configured) on
    /// disk. Disk writes go through a temp file + rename so a killed run
    /// never leaves a half-written entry under the final name; write
    /// errors degrade to memory-only caching rather than failing the job.
    pub fn put(&self, hash: u64, spec: &Json, result: &Json) {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(hash, result.clone());
        let Some(path) = self.entry_path(hash) else {
            return;
        };
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let doc = Json::object()
            .with("schema", CACHE_SCHEMA)
            .with("hash", hash_hex(hash).as_str())
            .with("spec", crate::hash::canonicalize(spec))
            .with("result", result.clone());
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, doc.to_pretty_string() + "\n").is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// The outcome of [`audit_dir`]: a census of every file under a cache
/// directory, classified by whether it would be trusted on read.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CacheAudit {
    /// Entries that pass full validation (schema + hash + filename).
    pub valid: usize,
    /// `.json` entries that fail validation — truncated, corrupt,
    /// hash-mismatched, or misnamed — listed by file name.
    pub invalid: Vec<String>,
    /// Leftover `*.tmp.<pid>` files from interrupted writes. Harmless
    /// (never read) but evidence a writer died mid-put.
    pub stray_tmp: Vec<String>,
    /// Anything else (not `.json`, not a temp file).
    pub other: Vec<String>,
}

impl CacheAudit {
    /// True when every entry validates and no debris is present.
    pub fn is_clean(&self) -> bool {
        self.invalid.is_empty() && self.stray_tmp.is_empty() && self.other.is_empty()
    }

    /// The audit as a JSON section for run reports.
    pub fn to_json(&self) -> Json {
        let names = |v: &[String]| Json::Arr(v.iter().map(|n| Json::Str(n.clone())).collect());
        Json::object()
            .with("valid", self.valid as u64)
            .with("invalid", names(&self.invalid))
            .with("stray_tmp", names(&self.stray_tmp))
            .with("other", names(&self.other))
    }
}

/// Audits every file under `dir`, re-validating each `.json` entry the
/// same way a read would (schema tag, embedded spec re-hash, filename
/// agreement). A missing directory audits as empty and clean — an
/// unpopulated cache is not an error. Used by the CI chaos job to assert
/// that fault-injected campaigns leave zero truncated cache files.
pub fn audit_dir(dir: impl AsRef<Path>) -> std::io::Result<CacheAudit> {
    let dir = dir.as_ref();
    let mut audit = CacheAudit::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(audit),
        Err(e) => return Err(e),
    };
    let probe = ResultCache::on_disk(dir);
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        let key = name
            .strip_suffix(".json")
            .and_then(crate::hash::parse_hash_hex);
        // The campaign heartbeat streams progress beside the cache
        // entries; it is expected telemetry, not cache state or debris.
        if name == crate::heartbeat::PROGRESS_FILE {
            continue;
        }
        match key {
            Some(hash) if probe.read_disk(&path, hash).is_some() => audit.valid += 1,
            Some(_) => audit.invalid.push(name),
            None if name.contains(".tmp.") => audit.stray_tmp.push(name),
            None => audit.other.push(name),
        }
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(test: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sop-exec-cache-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_layer_round_trips_and_counts() {
        let cache = ResultCache::in_memory();
        let spec = Json::object().with("k", 1u64);
        let h = spec_hash(&spec);
        assert_eq!(cache.get(h), None);
        cache.put(h, &spec, &Json::UInt(7));
        assert_eq!(cache.get(h), Some(Json::UInt(7)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disk_layer_survives_a_new_cache_instance() {
        let dir = scratch_dir("persist");
        let spec = Json::object().with("cores", 64u64);
        let h = spec_hash(&spec);
        {
            let cache = ResultCache::on_disk(&dir);
            cache.put(h, &spec, &Json::Num(1.5));
        }
        let fresh = ResultCache::on_disk(&dir);
        assert_eq!(fresh.get(h), Some(Json::Num(1.5)));
        assert_eq!(fresh.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_detected_not_trusted() {
        let dir = scratch_dir("truncated");
        let spec = Json::object().with("x", 2u64);
        let h = spec_hash(&spec);
        let cache = ResultCache::on_disk(&dir);
        cache.put(h, &spec, &Json::UInt(42));
        let path = dir.join(format!("{}.json", hash_hex(h)));
        let full = std::fs::read_to_string(&path).expect("entry exists");
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        let fresh = ResultCache::on_disk(&dir);
        assert_eq!(fresh.get(h), None, "truncated entry must read as a miss");
        assert_eq!(fresh.invalid(), 1);
        assert_eq!(fresh.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_result_with_stale_hash_is_rejected() {
        let dir = scratch_dir("tampered");
        let spec = Json::object().with("x", 3u64);
        let h = spec_hash(&spec);
        let cache = ResultCache::on_disk(&dir);
        cache.put(h, &spec, &Json::UInt(1));
        // Rewrite the entry with a different embedded spec (as if the
        // file were renamed onto the wrong key).
        let other_spec = Json::object().with("x", 4u64);
        let doc = Json::object()
            .with("schema", CACHE_SCHEMA)
            .with("hash", hash_hex(h).as_str())
            .with("spec", other_spec)
            .with("result", Json::UInt(99));
        let path = dir.join(format!("{}.json", hash_hex(h)));
        std::fs::write(&path, doc.to_pretty_string()).expect("write");
        let fresh = ResultCache::on_disk(&dir);
        assert_eq!(fresh.get(h), None);
        assert_eq!(fresh.invalid(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_reads_as_miss() {
        let dir = scratch_dir("schema");
        let spec = Json::object().with("x", 5u64);
        let h = spec_hash(&spec);
        let doc = Json::object()
            .with("schema", "sop-cache/v999")
            .with("hash", hash_hex(h).as_str())
            .with("spec", spec.clone())
            .with("result", Json::UInt(3));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join(format!("{}.json", hash_hex(h))),
            doc.to_pretty_string(),
        )
        .expect("write");
        let cache = ResultCache::on_disk(&dir);
        assert_eq!(cache.get(h), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_classifies_valid_invalid_and_debris() {
        let dir = scratch_dir("audit");
        let cache = ResultCache::on_disk(&dir);
        for x in 0..3u64 {
            let spec = Json::object().with("x", x);
            cache.put(spec_hash(&spec), &spec, &Json::UInt(x));
        }
        // Truncate one entry, drop a stray temp file and a README.
        let spec = Json::object().with("x", 1u64);
        let victim = dir.join(format!("{}.json", hash_hex(spec_hash(&spec))));
        let full = std::fs::read_to_string(&victim).expect("entry");
        std::fs::write(&victim, &full[..full.len() / 3]).expect("truncate");
        std::fs::write(dir.join("deadbeef.json.tmp.123"), "partial").expect("tmp");
        std::fs::write(dir.join("README"), "not an entry").expect("other");
        // The heartbeat stream lives beside the entries and is expected.
        std::fs::write(dir.join(crate::heartbeat::PROGRESS_FILE), "{}\n").expect("hb");

        let audit = audit_dir(&dir).expect("audit");
        assert_eq!(audit.valid, 2);
        assert_eq!(audit.invalid.len(), 1);
        assert_eq!(audit.stray_tmp, vec!["deadbeef.json.tmp.123".to_owned()]);
        assert_eq!(audit.other, vec!["README".to_owned()]);
        assert!(!audit.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_of_missing_or_clean_dir_is_clean() {
        let dir = scratch_dir("audit-clean");
        let audit = audit_dir(&dir).expect("missing dir audits clean");
        assert_eq!(audit, CacheAudit::default());
        assert!(audit.is_clean());
        let cache = ResultCache::on_disk(&dir);
        let spec = Json::object().with("y", 9u64);
        cache.put(spec_hash(&spec), &spec, &Json::UInt(9));
        let audit = audit_dir(&dir).expect("audit");
        assert_eq!(audit.valid, 1);
        assert!(audit.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
