//! Stable content addressing for job specifications.
//!
//! A job's cache identity is the FNV-1a hash of its *canonicalized*
//! specification: object members sorted by key at every depth, rendered
//! compactly. Two specs that differ only in member order therefore hash
//! identically, and the hash is a pure function of the spec's content —
//! stable across processes, runs, and machines (no pointer values, no
//! randomized hasher state).

use sop_obs::Json;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A copy of `spec` with object members sorted by key at every depth.
/// Arrays keep their order: `[1, 2]` and `[2, 1]` are different specs.
#[must_use]
pub fn canonicalize(spec: &Json) -> Json {
    match spec {
        Json::Obj(members) => {
            let mut sorted: Vec<(String, Json)> = members
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            // Duplicate keys would make the canonical form ambiguous;
            // keep the last occurrence, matching `Json::get`'s
            // first-match the other way around is a spec bug either way,
            // so collapse deterministically.
            sorted.dedup_by(|later, earlier| {
                if later.0 == earlier.0 {
                    earlier.1 = later.1.clone();
                    true
                } else {
                    false
                }
            });
            Json::Obj(sorted)
        }
        Json::Arr(items) => Json::Arr(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content hash of a job spec: FNV-1a of its canonical compact
/// rendering. Member order never matters; every value does.
pub fn spec_hash(spec: &Json) -> u64 {
    fnv1a(canonicalize(spec).to_compact_string().as_bytes())
}

/// The 16-digit lowercase-hex form used for cache file names and
/// campaign manifests.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a `hash_hex` string back to the hash.
pub fn parse_hash_hex(text: &str) -> Option<u64> {
    if text.len() == 16 {
        u64::from_str_radix(text, 16).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_order_does_not_change_the_hash() {
        let a = Json::object().with("x", 1u64).with("y", "z");
        let b = Json::object().with("y", "z").with("x", 1u64);
        assert_eq!(spec_hash(&a), spec_hash(&b));
    }

    #[test]
    fn nested_member_order_does_not_change_the_hash() {
        let a = Json::object().with("o", Json::object().with("p", 1u64).with("q", 2u64));
        let b = Json::object().with("o", Json::object().with("q", 2u64).with("p", 1u64));
        assert_eq!(spec_hash(&a), spec_hash(&b));
    }

    #[test]
    fn array_order_matters() {
        let a = Json::Arr(vec![Json::UInt(1), Json::UInt(2)]);
        let b = Json::Arr(vec![Json::UInt(2), Json::UInt(1)]);
        assert_ne!(spec_hash(&a), spec_hash(&b));
    }

    #[test]
    fn values_matter() {
        let a = Json::object().with("cores", 16u64);
        let b = Json::object().with("cores", 32u64);
        assert_ne!(spec_hash(&a), spec_hash(&b));
    }

    #[test]
    fn hash_is_pinned_across_builds() {
        // The disk cache outlives any one process; a hash change silently
        // invalidates every stored result. This pin makes such a change a
        // deliberate decision (delete target/sop-cache when bumping it).
        let spec = Json::object()
            .with("kind", "sim")
            .with("workload", "WebSearch")
            .with("cores", 64u64);
        assert_eq!(hash_hex(spec_hash(&spec)), "a1640f13198e9ccd");
    }

    #[test]
    fn hex_round_trips() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef_0bad_cafe] {
            assert_eq!(parse_hash_hex(&hash_hex(h)), Some(h));
        }
        assert_eq!(parse_hash_hex("nope"), None);
        assert_eq!(parse_hash_hex("123"), None);
    }

    #[test]
    fn duplicate_keys_collapse_to_the_last() {
        let dup = Json::Obj(vec![
            ("k".to_owned(), Json::UInt(1)),
            ("k".to_owned(), Json::UInt(2)),
        ]);
        let single = Json::object().with("k", 2u64);
        assert_eq!(spec_hash(&dup), spec_hash(&single));
    }
}
