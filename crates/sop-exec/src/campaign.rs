//! Campaigns: DAGs of cacheable jobs run on the work-stealing pool.
//!
//! A [`Job`] pairs a serializable spec (a [`Json`] value — the job's
//! *identity*) with a pure closure that evaluates it. The [`Exec`] handle
//! runs a campaign's jobs in dependency wavefronts: every job whose
//! dependencies are satisfied is eligible, eligible jobs run concurrently
//! on the pool, and results always come back **in job order**, so output
//! derived from them is byte-identical whatever the schedule did.
//!
//! Completed jobs are memoized in the content-addressed
//! [`ResultCache`](crate::cache::ResultCache) keyed by
//! [`spec_hash`](crate::hash::spec_hash), and each campaign appends the
//! hashes it completes to a *manifest* under the cache directory. A
//! killed run restarted with resume enabled replays completed jobs from
//! the cache and computes only the missing ones.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sop_obs::{Json, Registry};

use crate::cache::ResultCache;
use crate::hash::{hash_hex, parse_hash_hex, spec_hash};
use crate::heartbeat::Heartbeat;
use crate::pool;

/// One unit of work: a serializable spec plus the pure function that
/// evaluates it. The closure must derive its answer from the spec alone —
/// that is what makes the content-addressed cache sound.
pub struct Job<'a> {
    /// Human-readable label (shows up in manifests and job summaries).
    pub name: String,
    /// The job's identity; hashed (order-insensitively) for caching.
    pub spec: Json,
    /// Indices of jobs in the same campaign that must complete first.
    pub deps: Vec<usize>,
    /// Whether a failure is worth retrying (see [`Job::transient`]).
    pub retryable: bool,
    run: Box<dyn Fn(&Json) -> Json + Send + Sync + 'a>,
}

impl<'a> Job<'a> {
    /// A dependency-free job.
    pub fn new(
        name: impl Into<String>,
        spec: Json,
        run: impl Fn(&Json) -> Json + Send + Sync + 'a,
    ) -> Self {
        Job {
            name: name.into(),
            spec,
            deps: Vec::new(),
            retryable: false,
            run: Box::new(run),
        }
    }

    /// Adds dependencies (by index into the campaign's job list).
    #[must_use]
    pub fn after(mut self, deps: &[usize]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Flags the job's failures as transient: the campaign runner retries
    /// it (bounded, with exponential backoff) before declaring it failed.
    /// Only appropriate when the failure mode really is transient —
    /// flaky I/O, resource exhaustion — never for deterministic panics.
    #[must_use]
    pub fn transient(mut self) -> Self {
        self.retryable = true;
        self
    }
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Evaluated by a worker this run.
    Computed,
    /// Served by the content-addressed cache.
    Cached,
    /// Skipped via the campaign manifest on a resumed run (result came
    /// from the cache).
    Resumed,
    /// Produced no result: the job panicked, timed out, or depended on a
    /// failed job. Its slot in `results` is `Json::Null` and the details
    /// live in [`CampaignRun::failures`].
    Failed,
}

impl JobSource {
    fn name(self) -> &'static str {
        match self {
            JobSource::Computed => "computed",
            JobSource::Cached => "cached",
            JobSource::Resumed => "resumed",
            JobSource::Failed => "failed",
        }
    }
}

/// Details of one failed job in a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the job in the campaign's job list.
    pub index: usize,
    /// The job's label.
    pub name: String,
    /// The job's content hash (hex).
    pub hash: String,
    /// Human-readable cause ("panicked: ...", "timed out after ...",
    /// "dependency failed: ...").
    pub error: String,
}

impl JobFailure {
    /// Report-embeddable form (`failures` array entries).
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("name", self.name.as_str())
            .with("hash", self.hash.as_str())
            .with("error", self.error.as_str())
    }
}

/// Per-job record of a campaign run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's label.
    pub name: String,
    /// The job's content hash (hex).
    pub hash: String,
    /// Wall-clock microseconds spent evaluating (0 for cache/resume).
    pub duration_us: u64,
    /// Where the result came from.
    pub source: JobSource,
}

/// Results and bookkeeping of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One result per job, in job order. A failed job's slot holds
    /// `Json::Null`; everything that succeeded is real data (campaigns
    /// complete with partial results rather than discarding them).
    pub results: Vec<Json>,
    /// One outcome per job, in job order.
    pub outcomes: Vec<JobOutcome>,
    /// The jobs that produced no result, with their causes.
    pub failures: Vec<JobFailure>,
}

impl CampaignRun {
    /// Number of jobs whose result came from `source`.
    pub fn count(&self, source: JobSource) -> usize {
        self.outcomes.iter().filter(|o| o.source == source).count()
    }

    /// True when every job produced a result.
    pub fn is_fully_green(&self) -> bool {
        self.failures.is_empty()
    }

    /// The campaign summary block reports embed:
    /// `{total, computed, cached, resumed, failed, jobs: [{name, hash,
    /// us, source}], failures: [{name, hash, error}]}`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("total", self.outcomes.len())
            .with("computed", self.count(JobSource::Computed))
            .with("cached", self.count(JobSource::Cached))
            .with("resumed", self.count(JobSource::Resumed))
            .with("failed", self.failures.len())
            .with(
                "jobs",
                Json::Arr(
                    self.outcomes
                        .iter()
                        .map(|o| {
                            Json::object()
                                .with("name", o.name.as_str())
                                .with("hash", o.hash.as_str())
                                .with("duration_us", o.duration_us)
                                .with("source", o.source.name())
                        })
                        .collect(),
                ),
            )
            .with(
                "failures",
                Json::Arr(self.failures.iter().map(JobFailure::to_json).collect()),
            )
    }
}

/// Execution settings, usually parsed straight from a binary's argv.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Persist results under this directory. `None` disables the disk
    /// layer (the in-memory layer still deduplicates within a process).
    pub cache_dir: Option<PathBuf>,
    /// Disable all caching (`--no-cache`): every job recomputes.
    pub no_cache: bool,
    /// Replay completed jobs recorded in the campaign manifest
    /// (`--resume`).
    pub resume: bool,
    /// Per-job watchdog timeout in seconds (`--timeout-secs N`); `None`
    /// lets jobs run unbounded.
    pub timeout_secs: Option<u64>,
    /// Retry budget for jobs flagged [`transient`](Job::transient)
    /// (`--retries N`).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff_ms: u64,
    /// Append live progress events to `<cache-dir>/progress.ndjson`
    /// (see [`crate::heartbeat`]). On by default; a no-op without a
    /// disk cache directory. `--no-heartbeat` disables it.
    pub heartbeat: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: 0,
            cache_dir: Some(crate::cache::default_cache_dir()),
            no_cache: false,
            resume: false,
            timeout_secs: None,
            retries: 2,
            backoff_ms: 25,
            heartbeat: true,
        }
    }
}

impl ExecConfig {
    /// Parses the engine's standard flags from argv: `--jobs N`,
    /// `--no-cache`, `--resume`, `--timeout-secs N`, `--retries N`,
    /// `--no-heartbeat`.
    /// Unknown arguments are ignored (they belong to the host binary).
    pub fn from_args(args: &[String]) -> Self {
        fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        }
        let defaults = ExecConfig::default();
        ExecConfig {
            jobs: flag_value(args, "--jobs").unwrap_or(0),
            no_cache: args.iter().any(|a| a == "--no-cache"),
            resume: args.iter().any(|a| a == "--resume"),
            timeout_secs: flag_value(args, "--timeout-secs"),
            retries: flag_value(args, "--retries").unwrap_or(defaults.retries),
            heartbeat: !args.iter().any(|a| a == "--no-heartbeat"),
            ..defaults
        }
    }
}

/// The execution engine handle: a worker-count choice, a result cache,
/// and the metrics the run accumulates. Cheap to create; share one per
/// run so cache statistics aggregate.
#[derive(Debug)]
pub struct Exec {
    workers: usize,
    cache: Option<ResultCache>,
    resume: bool,
    timeout: Option<Duration>,
    retries: u32,
    backoff_ms: u64,
    metrics: Mutex<Registry>,
    failures: Mutex<Vec<JobFailure>>,
    heartbeat: Option<Arc<Heartbeat>>,
}

impl Exec {
    /// One worker, in-memory memoization only. The default for tests and
    /// library callers that did not opt into parallelism.
    pub fn sequential() -> Self {
        Exec::new(ExecConfig {
            jobs: 1,
            cache_dir: None,
            ..ExecConfig::default()
        })
    }

    /// `n` workers (0 = one per core), in-memory memoization only.
    pub fn with_workers(n: usize) -> Self {
        Exec::new(ExecConfig {
            jobs: n,
            cache_dir: None,
            ..ExecConfig::default()
        })
    }

    /// An engine configured from [`ExecConfig`].
    pub fn new(cfg: ExecConfig) -> Self {
        let mut metrics = Registry::new();
        let workers = if cfg.jobs == 0 {
            let (detected, fallback) = pool::detect_workers();
            if fallback {
                // Not silent: degraded parallelism is a real operational
                // condition (cgroup limits, exotic platforms) worth seeing.
                eprintln!(
                    "sop-exec: available_parallelism() failed; \
                     falling back to 1 worker (pass --jobs N to override)"
                );
                metrics.counter_add("exec.workers.fallback", 1);
            }
            detected
        } else {
            cfg.jobs
        };
        let cache = if cfg.no_cache {
            None
        } else {
            Some(match cfg.cache_dir {
                Some(dir) => ResultCache::on_disk(dir),
                None => ResultCache::in_memory(),
            })
        };
        metrics.gauge_set("exec.workers", workers as f64);
        // The heartbeat lives next to the disk cache; in-memory engines
        // (tests, library callers) have nowhere durable to stream to.
        let heartbeat = if cfg.heartbeat {
            cache
                .as_ref()
                .and_then(ResultCache::dir)
                .and_then(|dir| Heartbeat::open(dir).ok())
                .map(Arc::new)
        } else {
            None
        };
        Exec {
            workers,
            cache,
            resume: cfg.resume,
            timeout: cfg.timeout_secs.map(Duration::from_secs),
            retries: cfg.retries,
            backoff_ms: cfg.backoff_ms,
            metrics: Mutex::new(metrics),
            failures: Mutex::new(Vec::new()),
            heartbeat,
        }
    }

    /// Every job failure recorded by campaigns run on this engine, in
    /// the order they were observed. Binaries embed these in their report
    /// and exit non-zero when the list is non-empty — after writing
    /// everything that succeeded.
    pub fn failures(&self) -> Vec<JobFailure> {
        self.failures.lock().expect("failures lock").clone()
    }

    /// The number of worker threads this engine uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether resume-from-manifest is enabled.
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// The result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// The live progress stream, if one is attached (disk cache present
    /// and the heartbeat not disabled).
    pub fn heartbeat(&self) -> Option<&Heartbeat> {
        self.heartbeat.as_deref()
    }

    /// Parallel map with deterministic output order and no caching: the
    /// workhorse for cheap analytic sweeps. `f` must be pure per item.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let (results, stats) = pool::run_ordered(self.workers, items, |_, item| f(item));
        self.record_pool_stats(&stats);
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_add("exec.map.items", results.len() as u64);
        results
    }

    fn record_pool_stats(&self, stats: &[pool::WorkerStats]) {
        let mut m = self.metrics.lock().expect("metrics lock");
        for (i, s) in stats.iter().enumerate() {
            m.counter_add(&format!("exec.worker.{i}.jobs"), s.executed);
            m.counter_add(&format!("exec.worker.{i}.steals"), s.stolen);
        }
    }

    /// Runs a named campaign: hashes every job, satisfies what it can
    /// from the manifest (resume) and cache, evaluates the rest in
    /// dependency wavefronts on the fault-isolating pool, and persists
    /// new results and manifest lines as it goes.
    ///
    /// Failure is per-job, not per-campaign: a panicking or hung job gets
    /// a [`JobFailure`] entry (and fails its dependents with a
    /// dependency-failed cause) while every other job completes normally.
    /// Failed jobs are noted in the manifest as `# fail` comment lines —
    /// which the resume parser ignores — so a `--resume` rerun replays
    /// the successes from the cache and recomputes only the failed
    /// subset. Jobs flagged [`transient`](Job::transient) are retried
    /// with exponential backoff before being declared failed.
    ///
    /// # Panics
    ///
    /// Panics if a dependency index is out of range or the dependency
    /// graph has a cycle — both are campaign-construction bugs.
    pub fn run_campaign(&self, name: &str, jobs: Vec<Job<'static>>) -> CampaignRun {
        let n = jobs.len();
        for (i, job) in jobs.iter().enumerate() {
            for &d in &job.deps {
                assert!(d < n, "job {i} ({}) depends on missing job {d}", job.name);
            }
        }
        // Shared (not borrowed) because the resilient pool's workers are
        // detached threads: a hung job may outlive this call, so it must
        // keep its Job alive on its own.
        let jobs = Arc::new(jobs);
        let hashes: Vec<u64> = jobs.iter().map(|j| spec_hash(&j.spec)).collect();
        let mut manifest = Manifest::open(self.manifest_path(name), self.resume);
        if let Some(hb) = &self.heartbeat {
            hb.campaign_start(name, n as u64, self.workers as u64);
        }

        let mut results: Vec<Option<Json>> = (0..n).map(|_| None).collect();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<JobFailure> = Vec::new();
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let (ready, blocked): (Vec<usize>, Vec<usize>) = remaining
                .into_iter()
                .partition(|&i| jobs[i].deps.iter().all(|&d| outcomes[d].is_some()));
            assert!(!ready.is_empty(), "dependency cycle among jobs {blocked:?}");
            remaining = blocked;

            // Satisfy what the manifest + cache already know, and fail
            // dependents of failed jobs without running them.
            let mut to_compute = Vec::new();
            for &i in &ready {
                let failed_dep = jobs[i].deps.iter().copied().find(|&d| {
                    outcomes[d]
                        .as_ref()
                        .is_some_and(|o| o.source == JobSource::Failed)
                });
                if let Some(d) = failed_dep {
                    let error = pool::JobError::DepFailed(jobs[d].name.clone()).to_string();
                    mark_failed(
                        i,
                        error,
                        &jobs,
                        &hashes,
                        &mut outcomes,
                        &mut failures,
                        &mut manifest,
                        self.heartbeat.as_deref(),
                        name,
                    );
                    continue;
                }
                let hash = hashes[i];
                let from_manifest = self.resume && manifest.contains(hash);
                let cached = self.cache.as_ref().and_then(|c| c.get(hash));
                match cached {
                    Some(result) => {
                        let source = if from_manifest {
                            JobSource::Resumed
                        } else {
                            JobSource::Cached
                        };
                        outcomes[i] = Some(JobOutcome {
                            name: jobs[i].name.clone(),
                            hash: hash_hex(hash),
                            duration_us: 0,
                            source,
                        });
                        results[i] = Some(result);
                        manifest.record(hash, &jobs[i].name);
                        if let Some(hb) = &self.heartbeat {
                            hb.cache_hit(name, &jobs[i].name, source.name());
                        }
                    }
                    None => to_compute.push(i),
                }
            }

            // Two jobs in the same wave can share a spec (e.g. one
            // simulation point feeding two figures); evaluate each
            // distinct hash once and fan the result out. `--no-cache`
            // disables this memoization along with the rest.
            let mut unique: Vec<usize> = Vec::new();
            let mut dup_of: Vec<(usize, usize)> = Vec::new();
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for &i in &to_compute {
                match seen.get(&hashes[i]) {
                    Some(&pos) if self.cache.is_some() => dup_of.push((i, pos)),
                    _ => {
                        seen.insert(hashes[i], unique.len());
                        unique.push(i);
                    }
                }
            }

            // Evaluate the rest concurrently with panic isolation, the
            // per-job watchdog, and bounded exponential-backoff retry for
            // transient jobs; results return in order.
            type Evaluated = Result<(Json, u64, u32), (String, u32)>;
            let computed: Vec<Result<Evaluated, pool::JobError>> = {
                let jobs = Arc::clone(&jobs);
                let retries = self.retries;
                let backoff_ms = self.backoff_ms;
                let heartbeat = self.heartbeat.clone();
                let campaign = name.to_owned();
                let (done, stats) = pool::run_ordered_resilient(
                    self.workers,
                    unique.clone(),
                    self.timeout,
                    move |worker, i| {
                        let job = &jobs[i];
                        let budget = if job.retryable { retries } else { 0 };
                        if let Some(hb) = &heartbeat {
                            hb.job_start(&campaign, &job.name, worker as u64);
                        }
                        let started = Instant::now();
                        let mut attempt = 0u32;
                        loop {
                            match catch_unwind(AssertUnwindSafe(|| (job.run)(&job.spec))) {
                                Ok(result) => {
                                    let us = started.elapsed().as_micros() as u64;
                                    if let Some(hb) = &heartbeat {
                                        hb.job_finish(&campaign, &job.name, worker as u64, us);
                                    }
                                    return Ok((result, us, attempt));
                                }
                                Err(payload) => {
                                    if attempt >= budget {
                                        return Err((pool::panic_message(payload), attempt));
                                    }
                                    if let Some(hb) = &heartbeat {
                                        hb.job_retry(&campaign, &job.name, u64::from(attempt) + 1);
                                    }
                                    std::thread::sleep(Duration::from_millis(
                                        backoff_ms << attempt,
                                    ));
                                    attempt += 1;
                                }
                            }
                        }
                    },
                );
                self.record_pool_stats(&stats);
                done
            };
            for (&i, evaluated) in unique.iter().zip(computed) {
                let (error, retried) = match evaluated {
                    Ok(Ok((result, us, retried))) => {
                        if let Some(cache) = &self.cache {
                            cache.put(hashes[i], &jobs[i].spec, &result);
                        }
                        manifest.record(hashes[i], &jobs[i].name);
                        {
                            let mut m = self.metrics.lock().expect("metrics lock");
                            // exec.* keys are engine-owned, so a kind
                            // collision is unreachable; skip rather than
                            // abort the campaign if one ever appears.
                            let recorded = m.histogram_record("exec.job.us", us);
                            debug_assert!(recorded.is_ok(), "{recorded:?}");
                            m.counter_add("exec.job.retries", u64::from(retried));
                        }
                        outcomes[i] = Some(JobOutcome {
                            name: jobs[i].name.clone(),
                            hash: hash_hex(hashes[i]),
                            duration_us: us,
                            source: JobSource::Computed,
                        });
                        results[i] = Some(result);
                        continue;
                    }
                    Ok(Err((panic_msg, retried))) => {
                        (pool::JobError::Panicked(panic_msg).to_string(), retried)
                    }
                    // Pool-level failure: the watchdog timed the job out.
                    Err(e) => (e.to_string(), 0),
                };
                {
                    let mut m = self.metrics.lock().expect("metrics lock");
                    m.counter_add("exec.job.retries", u64::from(retried));
                }
                mark_failed(
                    i,
                    error,
                    &jobs,
                    &hashes,
                    &mut outcomes,
                    &mut failures,
                    &mut manifest,
                    self.heartbeat.as_deref(),
                    name,
                );
            }
            for (i, pos) in dup_of {
                let u = unique[pos];
                match &results[u] {
                    Some(result) => {
                        results[i] = Some(result.clone());
                        outcomes[i] = Some(JobOutcome {
                            name: jobs[i].name.clone(),
                            hash: hash_hex(hashes[i]),
                            duration_us: 0,
                            source: JobSource::Cached,
                        });
                        if let Some(hb) = &self.heartbeat {
                            hb.cache_hit(name, &jobs[i].name, JobSource::Cached.name());
                        }
                    }
                    // The job that evaluated this spec failed; its
                    // duplicates fail with it.
                    None => {
                        let error = failures
                            .iter()
                            .find(|f| f.index == u)
                            .map(|f| f.error.clone())
                            .unwrap_or_else(|| "duplicate of a failed job".to_owned());
                        mark_failed(
                            i,
                            error,
                            &jobs,
                            &hashes,
                            &mut outcomes,
                            &mut failures,
                            &mut manifest,
                            self.heartbeat.as_deref(),
                            name,
                        );
                    }
                }
            }
        }

        let run = CampaignRun {
            results: results
                .into_iter()
                .map(|r| r.unwrap_or(Json::Null))
                .collect(),
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("all jobs resolved"))
                .collect(),
            failures,
        };
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            m.counter_add("exec.jobs.completed", run.outcomes.len() as u64);
            m.counter_add("exec.jobs.computed", run.count(JobSource::Computed) as u64);
            m.counter_add("exec.jobs.cached", run.count(JobSource::Cached) as u64);
            m.counter_add("exec.jobs.resumed", run.count(JobSource::Resumed) as u64);
            m.counter_add("exec.jobs.failed", run.failures.len() as u64);
        }
        self.failures
            .lock()
            .expect("failures lock")
            .extend(run.failures.iter().cloned());
        if let Some(hb) = &self.heartbeat {
            hb.campaign_end(
                name,
                run.count(JobSource::Computed) as u64,
                (run.count(JobSource::Cached) + run.count(JobSource::Resumed)) as u64,
                run.failures.len() as u64,
            );
        }
        run
    }

    fn manifest_path(&self, campaign: &str) -> Option<PathBuf> {
        let dir = self.cache.as_ref().and_then(ResultCache::dir)?;
        let safe: String = campaign
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        Some(dir.join("campaigns").join(format!("{safe}.manifest")))
    }

    /// A snapshot of the engine's metrics (`exec.workers`,
    /// `exec.worker.<i>.*`, `exec.cache.*`, `exec.jobs.*`,
    /// `exec.map.items`, `exec.job.us`), with cache counters read at
    /// snapshot time.
    pub fn metrics_snapshot(&self) -> Registry {
        let mut m = self.metrics.lock().expect("metrics lock").clone();
        if let Some(cache) = &self.cache {
            m.counter_add("exec.cache.hits", cache.hits());
            m.counter_add("exec.cache.misses", cache.misses());
            m.counter_add("exec.cache.invalid", cache.invalid());
        }
        m
    }
}

/// Records one job's failure everywhere it must be visible: the outcome
/// slot (so dependents see it), the failures list (so reports carry it),
/// and the manifest (as a comment line, so a resumed run retries it).
#[allow(clippy::too_many_arguments)]
fn mark_failed(
    i: usize,
    error: String,
    jobs: &[Job<'static>],
    hashes: &[u64],
    outcomes: &mut [Option<JobOutcome>],
    failures: &mut Vec<JobFailure>,
    manifest: &mut Manifest,
    heartbeat: Option<&Heartbeat>,
    campaign: &str,
) {
    outcomes[i] = Some(JobOutcome {
        name: jobs[i].name.clone(),
        hash: hash_hex(hashes[i]),
        duration_us: 0,
        source: JobSource::Failed,
    });
    manifest.note_failure(hashes[i], &jobs[i].name, &error);
    if let Some(hb) = heartbeat {
        hb.job_fail(campaign, &jobs[i].name, &error);
    }
    failures.push(JobFailure {
        index: i,
        name: jobs[i].name.clone(),
        hash: hash_hex(hashes[i]),
        error,
    });
}

/// The per-campaign checkpoint: one line per completed job hash, plus
/// `# fail <hash> <name>: <cause>` comment lines for jobs that produced
/// no result. Lives under `<cache dir>/campaigns/`. A fresh (non-resume)
/// run truncates it; a resumed run loads it and appends. Only completed
/// hashes are parsed back (comment lines fail the hash parse), so a
/// resumed run recomputes exactly the failed subset.
struct Manifest {
    path: Option<PathBuf>,
    resume: bool,
    done: HashSet<u64>,
    file: Option<std::fs::File>,
}

impl Manifest {
    const HEADER: &'static str = "# sop-campaign/v1";

    fn open(path: Option<PathBuf>, resume: bool) -> Self {
        let mut done = HashSet::new();
        if resume {
            if let Some(path) = &path {
                if let Ok(text) = std::fs::read_to_string(path) {
                    for line in text.lines().skip(1) {
                        if let Some(hash) = line.split_whitespace().next().and_then(parse_hash_hex)
                        {
                            done.insert(hash);
                        }
                    }
                }
            }
        }
        // The file is opened lazily on the first record, so a fully
        // manifest-satisfied resume never rewrites anything.
        Manifest {
            path,
            resume,
            done,
            file: None,
        }
    }

    fn contains(&self, hash: u64) -> bool {
        self.done.contains(&hash)
    }

    fn ensure_file(&mut self) {
        let Some(path) = &self.path else { return };
        if self.file.is_some() {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        // Resume appends to the existing record; a fresh run starts
        // the manifest over.
        let appendable = self.resume && path.exists();
        self.file = if appendable {
            std::fs::OpenOptions::new().append(true).open(path).ok()
        } else {
            std::fs::File::create(path)
                .map(|mut f| {
                    let _ = writeln!(f, "{}", Self::HEADER);
                    f
                })
                .ok()
        };
    }

    fn record(&mut self, hash: u64, name: &str) {
        if !self.done.insert(hash) {
            return;
        }
        if self.path.is_none() {
            return;
        }
        self.ensure_file();
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{} {name}", hash_hex(hash));
        }
    }

    /// Appends a `# fail` comment line. The hash is *not* added to the
    /// completed set, and comment lines never parse as completed hashes,
    /// so resume retries exactly these jobs.
    fn note_failure(&mut self, hash: u64, name: &str, error: &str) {
        if self.path.is_none() {
            return;
        }
        self.ensure_file();
        if let Some(f) = &mut self.file {
            let cause = error.lines().next().unwrap_or("");
            let _ = writeln!(f, "# fail {} {name}: {cause}", hash_hex(hash));
        }
    }
}
