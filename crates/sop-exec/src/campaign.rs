//! Campaigns: DAGs of cacheable jobs run on the work-stealing pool.
//!
//! A [`Job`] pairs a serializable spec (a [`Json`] value — the job's
//! *identity*) with a pure closure that evaluates it. The [`Exec`] handle
//! runs a campaign's jobs in dependency wavefronts: every job whose
//! dependencies are satisfied is eligible, eligible jobs run concurrently
//! on the pool, and results always come back **in job order**, so output
//! derived from them is byte-identical whatever the schedule did.
//!
//! Completed jobs are memoized in the content-addressed
//! [`ResultCache`](crate::cache::ResultCache) keyed by
//! [`spec_hash`](crate::hash::spec_hash), and each campaign appends the
//! hashes it completes to a *manifest* under the cache directory. A
//! killed run restarted with resume enabled replays completed jobs from
//! the cache and computes only the missing ones.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use sop_obs::{Json, Registry};

use crate::cache::ResultCache;
use crate::hash::{hash_hex, parse_hash_hex, spec_hash};
use crate::pool;

/// One unit of work: a serializable spec plus the pure function that
/// evaluates it. The closure must derive its answer from the spec alone —
/// that is what makes the content-addressed cache sound.
pub struct Job<'a> {
    /// Human-readable label (shows up in manifests and job summaries).
    pub name: String,
    /// The job's identity; hashed (order-insensitively) for caching.
    pub spec: Json,
    /// Indices of jobs in the same campaign that must complete first.
    pub deps: Vec<usize>,
    run: Box<dyn Fn(&Json) -> Json + Send + Sync + 'a>,
}

impl<'a> Job<'a> {
    /// A dependency-free job.
    pub fn new(
        name: impl Into<String>,
        spec: Json,
        run: impl Fn(&Json) -> Json + Send + Sync + 'a,
    ) -> Self {
        Job {
            name: name.into(),
            spec,
            deps: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Adds dependencies (by index into the campaign's job list).
    #[must_use]
    pub fn after(mut self, deps: &[usize]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Evaluated by a worker this run.
    Computed,
    /// Served by the content-addressed cache.
    Cached,
    /// Skipped via the campaign manifest on a resumed run (result came
    /// from the cache).
    Resumed,
}

/// Per-job record of a campaign run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's label.
    pub name: String,
    /// The job's content hash (hex).
    pub hash: String,
    /// Wall-clock microseconds spent evaluating (0 for cache/resume).
    pub duration_us: u64,
    /// Where the result came from.
    pub source: JobSource,
}

/// Results and bookkeeping of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One result per job, in job order.
    pub results: Vec<Json>,
    /// One outcome per job, in job order.
    pub outcomes: Vec<JobOutcome>,
}

impl CampaignRun {
    /// Number of jobs whose result came from `source`.
    pub fn count(&self, source: JobSource) -> usize {
        self.outcomes.iter().filter(|o| o.source == source).count()
    }

    /// The campaign summary block reports embed:
    /// `{jobs, computed, cached, resumed, jobs: [{name, hash, us, source}]}`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("total", self.outcomes.len())
            .with("computed", self.count(JobSource::Computed))
            .with("cached", self.count(JobSource::Cached))
            .with("resumed", self.count(JobSource::Resumed))
            .with(
                "jobs",
                Json::Arr(
                    self.outcomes
                        .iter()
                        .map(|o| {
                            Json::object()
                                .with("name", o.name.as_str())
                                .with("hash", o.hash.as_str())
                                .with("duration_us", o.duration_us)
                                .with(
                                    "source",
                                    match o.source {
                                        JobSource::Computed => "computed",
                                        JobSource::Cached => "cached",
                                        JobSource::Resumed => "resumed",
                                    },
                                )
                        })
                        .collect(),
                ),
            )
    }
}

/// Execution settings, usually parsed straight from a binary's argv.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Persist results under this directory. `None` disables the disk
    /// layer (the in-memory layer still deduplicates within a process).
    pub cache_dir: Option<PathBuf>,
    /// Disable all caching (`--no-cache`): every job recomputes.
    pub no_cache: bool,
    /// Replay completed jobs recorded in the campaign manifest
    /// (`--resume`).
    pub resume: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: 0,
            cache_dir: Some(crate::cache::default_cache_dir()),
            no_cache: false,
            resume: false,
        }
    }
}

impl ExecConfig {
    /// Parses the engine's standard flags from argv: `--jobs N`,
    /// `--no-cache`, `--resume`. Unknown arguments are ignored (they
    /// belong to the host binary).
    pub fn from_args(args: &[String]) -> Self {
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        ExecConfig {
            jobs,
            no_cache: args.iter().any(|a| a == "--no-cache"),
            resume: args.iter().any(|a| a == "--resume"),
            ..ExecConfig::default()
        }
    }
}

/// The execution engine handle: a worker-count choice, a result cache,
/// and the metrics the run accumulates. Cheap to create; share one per
/// run so cache statistics aggregate.
#[derive(Debug)]
pub struct Exec {
    workers: usize,
    cache: Option<ResultCache>,
    resume: bool,
    metrics: Mutex<Registry>,
}

impl Exec {
    /// One worker, in-memory memoization only. The default for tests and
    /// library callers that did not opt into parallelism.
    pub fn sequential() -> Self {
        Exec::new(ExecConfig {
            jobs: 1,
            cache_dir: None,
            no_cache: false,
            resume: false,
        })
    }

    /// `n` workers (0 = one per core), in-memory memoization only.
    pub fn with_workers(n: usize) -> Self {
        Exec::new(ExecConfig {
            jobs: n,
            cache_dir: None,
            no_cache: false,
            resume: false,
        })
    }

    /// An engine configured from [`ExecConfig`].
    pub fn new(cfg: ExecConfig) -> Self {
        let workers = if cfg.jobs == 0 {
            pool::default_workers()
        } else {
            cfg.jobs
        };
        let cache = if cfg.no_cache {
            None
        } else {
            Some(match cfg.cache_dir {
                Some(dir) => ResultCache::on_disk(dir),
                None => ResultCache::in_memory(),
            })
        };
        let mut metrics = Registry::new();
        metrics.gauge_set("exec.workers", workers as f64);
        Exec {
            workers,
            cache,
            resume: cfg.resume,
            metrics: Mutex::new(metrics),
        }
    }

    /// The number of worker threads this engine uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether resume-from-manifest is enabled.
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// The result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Parallel map with deterministic output order and no caching: the
    /// workhorse for cheap analytic sweeps. `f` must be pure per item.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let (results, stats) = pool::run_ordered(self.workers, items, |_, item| f(item));
        self.record_pool_stats(&stats);
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_add("exec.map.items", results.len() as u64);
        results
    }

    fn record_pool_stats(&self, stats: &[pool::WorkerStats]) {
        let mut m = self.metrics.lock().expect("metrics lock");
        for (i, s) in stats.iter().enumerate() {
            m.counter_add(&format!("exec.worker.{i}.jobs"), s.executed);
            m.counter_add(&format!("exec.worker.{i}.steals"), s.stolen);
        }
    }

    /// Runs a named campaign: hashes every job, satisfies what it can
    /// from the manifest (resume) and cache, evaluates the rest in
    /// dependency wavefronts on the pool, and persists new results and
    /// manifest lines as it goes.
    ///
    /// # Panics
    ///
    /// Panics if a dependency index is out of range or the dependency
    /// graph has a cycle — both are campaign-construction bugs.
    pub fn run_campaign(&self, name: &str, jobs: Vec<Job<'_>>) -> CampaignRun {
        let n = jobs.len();
        for (i, job) in jobs.iter().enumerate() {
            for &d in &job.deps {
                assert!(d < n, "job {i} ({}) depends on missing job {d}", job.name);
            }
        }
        let hashes: Vec<u64> = jobs.iter().map(|j| spec_hash(&j.spec)).collect();
        let mut manifest = Manifest::open(self.manifest_path(name), self.resume);

        let mut results: Vec<Option<Json>> = (0..n).map(|_| None).collect();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let (ready, blocked): (Vec<usize>, Vec<usize>) = remaining
                .into_iter()
                .partition(|&i| jobs[i].deps.iter().all(|&d| results[d].is_some()));
            assert!(!ready.is_empty(), "dependency cycle among jobs {blocked:?}");
            remaining = blocked;

            // Satisfy what the manifest + cache already know.
            let mut to_compute = Vec::new();
            for &i in &ready {
                let hash = hashes[i];
                let from_manifest = self.resume && manifest.contains(hash);
                let cached = self.cache.as_ref().and_then(|c| c.get(hash));
                match cached {
                    Some(result) => {
                        outcomes[i] = Some(JobOutcome {
                            name: jobs[i].name.clone(),
                            hash: hash_hex(hash),
                            duration_us: 0,
                            source: if from_manifest {
                                JobSource::Resumed
                            } else {
                                JobSource::Cached
                            },
                        });
                        results[i] = Some(result);
                        manifest.record(hash, &jobs[i].name);
                    }
                    None => to_compute.push(i),
                }
            }

            // Two jobs in the same wave can share a spec (e.g. one
            // simulation point feeding two figures); evaluate each
            // distinct hash once and fan the result out. `--no-cache`
            // disables this memoization along with the rest.
            let mut unique: Vec<usize> = Vec::new();
            let mut dup_of: Vec<(usize, usize)> = Vec::new();
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for &i in &to_compute {
                match seen.get(&hashes[i]) {
                    Some(&pos) if self.cache.is_some() => dup_of.push((i, pos)),
                    _ => {
                        seen.insert(hashes[i], unique.len());
                        unique.push(i);
                    }
                }
            }

            // Evaluate the rest concurrently; results return in order.
            let computed: Vec<(Json, u64)> = {
                let jobs = &jobs;
                let (done, stats) = pool::run_ordered(self.workers, unique.clone(), |_, i| {
                    let started = Instant::now();
                    let result = (jobs[i].run)(&jobs[i].spec);
                    (result, started.elapsed().as_micros() as u64)
                });
                self.record_pool_stats(&stats);
                done
            };
            for (&i, (result, us)) in unique.iter().zip(computed) {
                if let Some(cache) = &self.cache {
                    cache.put(hashes[i], &jobs[i].spec, &result);
                }
                manifest.record(hashes[i], &jobs[i].name);
                {
                    let mut m = self.metrics.lock().expect("metrics lock");
                    m.histogram_record("exec.job.us", us);
                }
                outcomes[i] = Some(JobOutcome {
                    name: jobs[i].name.clone(),
                    hash: hash_hex(hashes[i]),
                    duration_us: us,
                    source: JobSource::Computed,
                });
                results[i] = Some(result);
            }
            for (i, pos) in dup_of {
                results[i] = results[unique[pos]].clone();
                outcomes[i] = Some(JobOutcome {
                    name: jobs[i].name.clone(),
                    hash: hash_hex(hashes[i]),
                    duration_us: 0,
                    source: JobSource::Cached,
                });
            }
        }

        let run = CampaignRun {
            results: results.into_iter().map(|r| r.expect("all ran")).collect(),
            outcomes: outcomes.into_iter().map(|o| o.expect("all ran")).collect(),
        };
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            m.counter_add("exec.jobs.completed", run.outcomes.len() as u64);
            m.counter_add("exec.jobs.computed", run.count(JobSource::Computed) as u64);
            m.counter_add("exec.jobs.cached", run.count(JobSource::Cached) as u64);
            m.counter_add("exec.jobs.resumed", run.count(JobSource::Resumed) as u64);
        }
        run
    }

    fn manifest_path(&self, campaign: &str) -> Option<PathBuf> {
        let dir = self.cache.as_ref().and_then(ResultCache::dir)?;
        let safe: String = campaign
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        Some(dir.join("campaigns").join(format!("{safe}.manifest")))
    }

    /// A snapshot of the engine's metrics (`exec.workers`,
    /// `exec.worker.<i>.*`, `exec.cache.*`, `exec.jobs.*`,
    /// `exec.map.items`, `exec.job.us`), with cache counters read at
    /// snapshot time.
    pub fn metrics_snapshot(&self) -> Registry {
        let mut m = self.metrics.lock().expect("metrics lock").clone();
        if let Some(cache) = &self.cache {
            m.counter_add("exec.cache.hits", cache.hits());
            m.counter_add("exec.cache.misses", cache.misses());
            m.counter_add("exec.cache.invalid", cache.invalid());
        }
        m
    }
}

/// The per-campaign checkpoint: one line per completed job hash. Lives
/// under `<cache dir>/campaigns/`. A fresh (non-resume) run truncates it;
/// a resumed run loads it and appends.
struct Manifest {
    path: Option<PathBuf>,
    resume: bool,
    done: HashSet<u64>,
    file: Option<std::fs::File>,
}

impl Manifest {
    const HEADER: &'static str = "# sop-campaign/v1";

    fn open(path: Option<PathBuf>, resume: bool) -> Self {
        let mut done = HashSet::new();
        if resume {
            if let Some(path) = &path {
                if let Ok(text) = std::fs::read_to_string(path) {
                    for line in text.lines().skip(1) {
                        if let Some(hash) = line.split_whitespace().next().and_then(parse_hash_hex)
                        {
                            done.insert(hash);
                        }
                    }
                }
            }
        }
        // The file is opened lazily on the first record, so a fully
        // manifest-satisfied resume never rewrites anything.
        Manifest {
            path,
            resume,
            done,
            file: None,
        }
    }

    fn contains(&self, hash: u64) -> bool {
        self.done.contains(&hash)
    }

    fn record(&mut self, hash: u64, name: &str) {
        if !self.done.insert(hash) {
            return;
        }
        let Some(path) = &self.path else { return };
        if self.file.is_none() {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            // Resume appends to the existing record; a fresh run starts
            // the manifest over.
            let appendable = self.resume && path.exists();
            self.file = if appendable {
                std::fs::OpenOptions::new().append(true).open(path).ok()
            } else {
                std::fs::File::create(path)
                    .map(|mut f| {
                        let _ = writeln!(f, "{}", Self::HEADER);
                        f
                    })
                    .ok()
            };
        }
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{} {name}", hash_hex(hash));
        }
    }
}
