//! Live campaign heartbeat: an append-only NDJSON progress stream.
//!
//! While a campaign runs, the engine appends one JSON object per line
//! to `<cache-dir>/progress.ndjson` — job started / finished / retried
//! / cache-hit / failed events carrying queue depth, per-job wall µs,
//! and an ETA extrapolated from completed-job statistics. Each line is
//! written with a single `O_APPEND` write, so concurrent workers never
//! interleave bytes and an external reader (`sop top`) can tail the
//! stream mid-run; a reader must still tolerate a torn final line.
//!
//! Event identity (`ev`, `job`, `source`) is deterministic for a given
//! campaign regardless of worker count; timing fields (`t_us`,
//! `wall_us`, `worker`, `queue`, `eta_us`, `cycles`, `par_threads`,
//! `par_stall`) are not — the heartbeat determinism test compares the
//! identity subset only.
//!
//! The simulated-cycle counter lives in `sop-sim`, which this crate
//! cannot depend on; binaries install it via [`set_cycle_source`] so
//! `job_finish` events can carry a process-wide cycle snapshot and
//! `sop top` can report Mcycles/s. The intra-run parallel engine's
//! telemetry rides the same pattern ([`set_par_source`]): parallel
//! campaigns stamp `job_finish` with the configured thread count and
//! the epoch-barrier stall fraction so `sop top` can show them live.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use sop_obs::Json;

/// File name of the progress stream inside the cache directory.
pub const PROGRESS_FILE: &str = "progress.ndjson";

/// Streams larger than this are truncated when the next heartbeat
/// opens, bounding unattended disk growth.
const ROTATE_BYTES: u64 = 8 * 1024 * 1024;

static CYCLE_SOURCE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the process-wide simulated-cycle counter sampled into
/// `job_finish` events. First installation wins; later calls are
/// ignored (the counter is global either way).
pub fn set_cycle_source(f: fn() -> u64) {
    let _ = CYCLE_SOURCE.set(f);
}

fn cycles_now() -> Option<u64> {
    CYCLE_SOURCE.get().map(|f| f())
}

/// One intra-run parallel-engine telemetry sample: configured threads,
/// epochs crossed, barrier stall ns, parallel advance ns.
pub type ParTelemetry = (u64, u64, u64, u64);

static PAR_SOURCE: OnceLock<fn() -> ParTelemetry> = OnceLock::new();

/// Installs the intra-run parallel-engine telemetry source (`sop_sim::
/// par_telemetry`-shaped, see [`ParTelemetry`]). First installation
/// wins. With the source installed and more than one thread
/// configured, `job_finish` events gain `par_threads` and `par_stall`
/// fields; sequential runs emit byte-identical events whether or not
/// the source is installed.
pub fn set_par_source(f: fn() -> ParTelemetry) {
    let _ = PAR_SOURCE.set(f);
}

fn par_now() -> Option<ParTelemetry> {
    PAR_SOURCE.get().map(|f| f())
}

/// A handle to the progress stream plus the running statistics that
/// queue-depth and ETA fields are derived from. Shared across worker
/// threads via `Arc`; all counters are atomics and the file writes one
/// whole line at a time.
#[derive(Debug)]
pub struct Heartbeat {
    path: PathBuf,
    file: Mutex<File>,
    t0: Instant,
    total: AtomicU64,
    finished: AtomicU64,
    computed_n: AtomicU64,
    computed_us: AtomicU64,
    workers: AtomicU64,
}

impl Heartbeat {
    /// Opens (appending) the progress stream inside a cache directory,
    /// rotating it first when it has outgrown the size bound.
    pub fn open(dir: &Path) -> std::io::Result<Heartbeat> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(PROGRESS_FILE);
        let oversized = std::fs::metadata(&path).map(|m| m.len() > ROTATE_BYTES);
        if oversized.unwrap_or(false) {
            std::fs::remove_file(&path)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Heartbeat {
            path,
            file: Mutex::new(file),
            t0: Instant::now(),
            total: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            computed_n: AtomicU64::new(0),
            computed_us: AtomicU64::new(0),
            workers: AtomicU64::new(1),
        })
    }

    /// Where the stream lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn emit(&self, ev: &str, campaign: &str, fields: Json) {
        let mut line = Json::object()
            .with("ev", ev)
            .with("t_us", self.t0.elapsed().as_micros() as u64)
            .with("campaign", campaign);
        if let Json::Obj(members) = fields {
            for (k, v) in members {
                line.insert(&k, v);
            }
        }
        let mut text = line.to_compact_string();
        text.push('\n');
        // One write per line: O_APPEND keeps concurrent appenders from
        // interleaving. A failed append is dropped — telemetry must
        // never fail a campaign.
        if let Ok(mut f) = self.file.lock() {
            let _ = f.write_all(text.as_bytes());
        }
    }

    /// Jobs not yet resolved in the current campaign.
    fn queue_depth(&self) -> u64 {
        self.total
            .load(Ordering::Relaxed)
            .saturating_sub(self.finished.load(Ordering::Relaxed))
    }

    /// Remaining wall µs extrapolated from mean computed-job wall time
    /// and the worker count; `None` until a computed job completes.
    fn eta_us(&self) -> Option<u64> {
        let n = self.computed_n.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let mean = self.computed_us.load(Ordering::Relaxed) / n;
        let workers = self.workers.load(Ordering::Relaxed).max(1);
        Some(self.queue_depth() * mean / workers)
    }

    /// A campaign is starting: resets the queue statistics.
    pub fn campaign_start(&self, campaign: &str, jobs: u64, workers: u64) {
        self.total.store(jobs, Ordering::Relaxed);
        self.finished.store(0, Ordering::Relaxed);
        self.computed_n.store(0, Ordering::Relaxed);
        self.computed_us.store(0, Ordering::Relaxed);
        self.workers.store(workers, Ordering::Relaxed);
        self.emit(
            "campaign_start",
            campaign,
            Json::object().with("jobs", jobs).with("workers", workers),
        );
    }

    /// A job was satisfied from the cache or the resume manifest.
    pub fn cache_hit(&self, campaign: &str, job: &str, source: &str) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        self.emit(
            "cache_hit",
            campaign,
            Json::object()
                .with("job", job)
                .with("source", source)
                .with("queue", self.queue_depth()),
        );
    }

    /// A worker picked up a job.
    pub fn job_start(&self, campaign: &str, job: &str, worker: u64) {
        self.emit(
            "job_start",
            campaign,
            Json::object().with("job", job).with("worker", worker),
        );
    }

    /// A job panicked and is being retried.
    pub fn job_retry(&self, campaign: &str, job: &str, attempt: u64) {
        self.emit(
            "job_retry",
            campaign,
            Json::object().with("job", job).with("attempt", attempt),
        );
    }

    /// A worker finished computing a job.
    pub fn job_finish(&self, campaign: &str, job: &str, worker: u64, wall_us: u64) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        self.computed_n.fetch_add(1, Ordering::Relaxed);
        self.computed_us.fetch_add(wall_us, Ordering::Relaxed);
        let mut fields = Json::object()
            .with("job", job)
            .with("source", "computed")
            .with("worker", worker)
            .with("wall_us", wall_us)
            .with("queue", self.queue_depth());
        if let Some(eta) = self.eta_us() {
            fields.insert("eta_us", Json::UInt(eta));
        }
        if let Some(c) = cycles_now() {
            fields.insert("cycles", Json::UInt(c));
        }
        if let Some((threads, _, barrier_ns, advance_ns)) = par_now() {
            if threads > 1 {
                fields.insert("par_threads", Json::UInt(threads));
                if advance_ns > 0 {
                    let stall = barrier_ns as f64 / advance_ns as f64;
                    fields.insert("par_stall", Json::from(stall));
                }
            }
        }
        self.emit("job_finish", campaign, fields);
    }

    /// A job failed terminally (panic budget exhausted, watchdog
    /// timeout, or failed dependency).
    pub fn job_fail(&self, campaign: &str, job: &str, error: &str) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        // Errors can quote arbitrary panic payloads; cap the field so a
        // pathological message cannot bloat the stream.
        let short: String = error.chars().take(200).collect();
        self.emit(
            "job_fail",
            campaign,
            Json::object()
                .with("job", job)
                .with("source", "failed")
                .with("error", short)
                .with("queue", self.queue_depth()),
        );
    }

    /// The campaign resolved every job.
    pub fn campaign_end(&self, campaign: &str, computed: u64, cached: u64, failed: u64) {
        self.emit(
            "campaign_end",
            campaign,
            Json::object()
                .with("computed", computed)
                .with("cached", cached)
                .with("failed", failed),
        );
    }
}

/// Parses a progress stream into event objects, skipping malformed
/// lines (a reader can race the writer's final line).
pub fn read_events(path: &Path) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| sop_obs::json::parse(l).ok())
        .collect()
}

/// Last-known activity of one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerActivity {
    /// Worker index within the pool.
    pub worker: u64,
    /// Job name it last touched.
    pub job: String,
    /// Whether that job is still running (a `job_start` without a
    /// matching `job_finish` yet).
    pub running: bool,
}

/// An aggregated view over the most recent campaign in a progress
/// stream — everything `sop top` displays.
#[derive(Debug, Clone, PartialEq)]
pub struct TopSnapshot {
    /// Campaign name from the latest `campaign_start`.
    pub campaign: String,
    /// Total jobs in the campaign.
    pub total: u64,
    /// Jobs resolved so far (computed + cache hits + failures).
    pub finished: u64,
    /// Jobs computed by workers.
    pub computed: u64,
    /// Jobs satisfied from cache or manifest.
    pub cache_hits: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Worker count announced at campaign start.
    pub workers: u64,
    /// Per-worker last activity, sorted by worker index.
    pub per_worker: Vec<WorkerActivity>,
    /// Resolved jobs per second of stream time.
    pub jobs_per_sec: f64,
    /// Simulated megacycles per second across the observed window
    /// (`None` when no cycle source was installed in the producer, or
    /// when the campaign reports fleet time instead).
    pub mcycles_per_sec: Option<f64>,
    /// Simulated fleet hours per second across the observed window.
    /// Fleet campaigns (name starting with `fleet`) advance the
    /// installed work counter in simulated seconds rather than core
    /// cycles, so the same `cycles` deltas are re-interpreted here and
    /// `mcycles_per_sec` stays `None` for them.
    pub sim_hours_per_sec: Option<f64>,
    /// Latest ETA estimate in µs, if any job has completed.
    pub eta_us: Option<u64>,
    /// Intra-run parallel-engine thread count from the latest
    /// `job_finish` carrying one (`None` for sequential campaigns).
    pub par_threads: Option<u64>,
    /// Latest epoch-barrier stall fraction (barrier ns over parallel
    /// advance ns) for parallel campaigns.
    pub par_stall: Option<f64>,
    /// Whether the campaign has ended.
    pub done: bool,
}

impl TopSnapshot {
    /// Cache hits as a fraction of resolved jobs.
    pub fn hit_rate(&self) -> f64 {
        if self.finished == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.finished as f64
        }
    }

    /// Renders the monitor panel as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.finished as f64 / self.total as f64
        };
        out.push_str(&format!(
            "campaign {:<12} {:>4}/{} jobs ({pct:.0}%){}\n",
            self.campaign,
            self.finished,
            self.total,
            if self.done { " · done" } else { "" }
        ));
        out.push_str(&format!(
            "  computed {} · cache hits {} ({:.0}%) · failed {}\n",
            self.computed,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.failed
        ));
        let mcyc = match (self.mcycles_per_sec, self.sim_hours_per_sec) {
            (Some(m), _) => format!(" · {m:.1} Mcycles/s"),
            (None, Some(h)) => format!(" · {h:.2} sim-hours/s"),
            (None, None) => String::new(),
        };
        let par = match (self.par_threads, self.par_stall) {
            (Some(t), Some(s)) => format!(" · {t} threads ({:.0}% barrier)", s * 100.0),
            (Some(t), None) => format!(" · {t} threads"),
            _ => String::new(),
        };
        let eta = match (self.done, self.eta_us) {
            (false, Some(us)) => format!(" · eta {:.1}s", us as f64 / 1e6),
            _ => String::new(),
        };
        out.push_str(&format!(
            "  {:.2} jobs/s{mcyc}{par}{eta}\n",
            self.jobs_per_sec
        ));
        for w in &self.per_worker {
            let state = if w.running { "running" } else { "idle" };
            out.push_str(&format!(
                "  worker {:<3} {:<8} {}\n",
                w.worker, state, w.job
            ));
        }
        out
    }
}

/// Aggregates the most recent campaign's events into a [`TopSnapshot`],
/// or `None` when the stream holds no `campaign_start` yet.
pub fn snapshot(events: &[Json]) -> Option<TopSnapshot> {
    let str_of = |e: &Json, k: &str| e.get(k).and_then(Json::as_str).map(str::to_owned);
    let num_of = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64);
    let start = events
        .iter()
        .rposition(|e| str_of(e, "ev").as_deref() == Some("campaign_start"))?;
    let events = &events[start..];
    let head = &events[0];
    let campaign = str_of(head, "campaign").unwrap_or_default();
    let total = num_of(head, "jobs").unwrap_or(0.0) as u64;
    let workers = num_of(head, "workers").unwrap_or(1.0) as u64;

    let mut computed = 0u64;
    let mut cache_hits = 0u64;
    let mut failed = 0u64;
    let mut done = false;
    let mut eta_us = None;
    let mut t_last = 0.0f64;
    let t_first = num_of(head, "t_us").unwrap_or(0.0);
    let mut cycles: Option<(f64, f64)> = None;
    let mut par_threads = None;
    let mut par_stall = None;
    let mut activity: Vec<WorkerActivity> = Vec::new();
    for e in events {
        let Some(ev) = str_of(e, "ev") else { continue };
        if let Some(t) = num_of(e, "t_us") {
            t_last = t_last.max(t);
        }
        match ev.as_str() {
            "cache_hit" => cache_hits += 1,
            "job_finish" => {
                computed += 1;
                if let Some(us) = num_of(e, "eta_us") {
                    eta_us = Some(us as u64);
                }
                if let Some(c) = num_of(e, "cycles") {
                    cycles = Some(match cycles {
                        None => (c, c),
                        Some((first, _)) => (first, c),
                    });
                }
                if let Some(t) = num_of(e, "par_threads") {
                    par_threads = Some(t as u64);
                    par_stall = num_of(e, "par_stall");
                }
            }
            "job_fail" => failed += 1,
            "campaign_end" => done = true,
            _ => {}
        }
        // Track the last touch per worker for start/finish events.
        if let (Some(w), Some(job)) = (num_of(e, "worker"), str_of(e, "job")) {
            let running = ev == "job_start";
            let w = w as u64;
            match activity.iter_mut().find(|a| a.worker == w) {
                Some(a) => {
                    a.job = job;
                    a.running = running;
                }
                None => activity.push(WorkerActivity {
                    worker: w,
                    job,
                    running,
                }),
            }
        }
    }
    activity.sort_by_key(|a| a.worker);
    let finished = computed + cache_hits + failed;
    let span_s = (t_last - t_first).max(1.0) / 1e6;
    // Fleet campaigns advance the work counter in simulated seconds,
    // chapter campaigns in core cycles; the campaign name prefix picks
    // which unit the delta is rendered in.
    let is_fleet = campaign.starts_with("fleet");
    let delta = match cycles {
        Some((first, last)) if last > first => Some(last - first),
        _ => None,
    };
    let mcycles_per_sec = delta.filter(|_| !is_fleet).map(|d| d / 1e6 / span_s);
    let sim_hours_per_sec = delta.filter(|_| is_fleet).map(|d| d / 3600.0 / span_s);
    Some(TopSnapshot {
        campaign,
        total,
        finished,
        computed,
        cache_hits,
        failed,
        workers,
        per_worker: activity,
        jobs_per_sec: finished as f64 / span_s,
        mcycles_per_sec,
        sim_hours_per_sec,
        eta_us,
        par_threads,
        par_stall,
        done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sop-heartbeat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn events_append_one_json_object_per_line() {
        let dir = temp_dir("lines");
        let hb = Heartbeat::open(&dir).expect("open");
        hb.campaign_start("ch3", 2, 1);
        hb.job_start("ch3", "a", 0);
        hb.job_finish("ch3", "a", 0, 1500);
        hb.cache_hit("ch3", "b", "cached");
        hb.campaign_end("ch3", 1, 1, 0);
        let events = read_events(hb.path());
        assert_eq!(events.len(), 5);
        let kinds: Vec<_> = events
            .iter()
            .map(|e| e.get("ev").and_then(Json::as_str).expect("ev").to_owned())
            .collect();
        assert_eq!(
            kinds,
            [
                "campaign_start",
                "job_start",
                "job_finish",
                "cache_hit",
                "campaign_end"
            ]
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn snapshot_aggregates_the_latest_campaign() {
        let dir = temp_dir("snapshot");
        let hb = Heartbeat::open(&dir).expect("open");
        // An earlier campaign that must not leak into the snapshot.
        hb.campaign_start("old", 1, 1);
        hb.cache_hit("old", "x", "cached");
        hb.campaign_end("old", 0, 1, 0);
        hb.campaign_start("ch3", 3, 2);
        hb.job_start("ch3", "a", 0);
        hb.job_finish("ch3", "a", 0, 2000);
        hb.cache_hit("ch3", "b", "resumed");
        let s = snapshot(&read_events(hb.path())).expect("campaign present");
        assert_eq!(s.campaign, "ch3");
        assert_eq!(
            (s.total, s.finished, s.computed, s.cache_hits),
            (3, 2, 1, 1)
        );
        assert!(!s.done);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.eta_us, Some(2000), "2 queued × 2000µs mean / 2 workers");
        assert_eq!(s.per_worker.len(), 1);
        assert!(!s.per_worker[0].running);
        let panel = s.render();
        assert!(panel.contains("campaign ch3"), "{panel}");
        assert!(panel.contains("cache hits 1 (50%)"), "{panel}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn snapshot_of_an_empty_stream_is_none() {
        assert!(snapshot(&[]).is_none());
    }

    #[test]
    fn fleet_campaigns_report_sim_hours_instead_of_mcycles() {
        // Hand-built events: the cycle counter advances in simulated
        // seconds for fleet jobs (7200 ticks = 2 sim-hours here) over
        // a 4-second stream span.
        let lines = [
            r#"{"ev":"campaign_start","t_us":0,"campaign":"fleet","jobs":2,"workers":1}"#,
            r#"{"ev":"job_finish","t_us":2000000,"campaign":"fleet","job":"a","source":"computed","worker":0,"wall_us":2000000,"queue":1,"cycles":7200}"#,
            r#"{"ev":"job_finish","t_us":4000000,"campaign":"fleet","job":"b","source":"computed","worker":0,"wall_us":2000000,"queue":0,"cycles":14400}"#,
        ];
        let events: Vec<Json> = lines
            .iter()
            .map(|l| sop_obs::json::parse(l).expect("event"))
            .collect();
        let s = snapshot(&events).expect("campaign present");
        assert_eq!(s.mcycles_per_sec, None, "fleet deltas are not cycles");
        let hours = s.sim_hours_per_sec.expect("sim-hours rate");
        // 7200 simulated seconds over 4 wall seconds = 0.5 sim-hours/s.
        assert!((hours - 0.5).abs() < 1e-9, "{hours}");
        let panel = s.render();
        assert!(panel.contains("0.50 sim-hours/s"), "{panel}");
        assert!(!panel.contains("Mcycles"), "{panel}");
    }

    #[test]
    fn parallel_campaigns_surface_threads_and_barrier_stall() {
        let lines = [
            r#"{"ev":"campaign_start","t_us":0,"campaign":"ch3","jobs":2,"workers":1}"#,
            r#"{"ev":"job_finish","t_us":1000000,"campaign":"ch3","job":"a","source":"computed","worker":0,"wall_us":1000000,"queue":1,"par_threads":4,"par_stall":0.12}"#,
        ];
        let events: Vec<Json> = lines
            .iter()
            .map(|l| sop_obs::json::parse(l).expect("event"))
            .collect();
        let s = snapshot(&events).expect("campaign present");
        assert_eq!(s.par_threads, Some(4));
        assert!((s.par_stall.expect("stall fraction") - 0.12).abs() < 1e-9);
        let panel = s.render();
        assert!(panel.contains("4 threads (12% barrier)"), "{panel}");
        // Sequential events carry no par fields and render none.
        let s = snapshot(&events[..1]).expect("campaign present");
        assert_eq!((s.par_threads, s.par_stall), (None, None));
        assert!(!s.render().contains("threads"), "{}", s.render());
    }

    #[test]
    fn torn_final_lines_are_skipped() {
        let dir = temp_dir("torn");
        let hb = Heartbeat::open(&dir).expect("open");
        hb.campaign_start("ch3", 1, 1);
        let mut f = OpenOptions::new()
            .append(true)
            .open(hb.path())
            .expect("reopen");
        f.write_all(b"{\"ev\":\"job_fin").expect("torn tail");
        drop(f);
        assert_eq!(read_events(hb.path()).len(), 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
