//! The AMAT-extension performance equation.
//!
//! Per-core performance is `1 / T` where `T`, the average time per
//! application instruction, decomposes into (§2.4.3):
//!
//! ```text
//! T = 1/IPC_inf                            (compute, L1-resident)
//!   + A_ser x (L_bank + L_net)             (serialized LLC accesses)
//!   + M(C, n)/MLP_mem x (L_net + L_mem)    (off-chip accesses)
//! ```
//!
//! `A_ser` weights instruction-fetch misses fully (they stall the front
//! end) and divides data accesses by the data MLP; `M(C, n)` is the
//! workload's LLC miss curve; `L_net` is the interconnect round-trip.

use crate::interconnect::Interconnect;
use sop_tech::{CacheGeometry, CoreKind, LlcParams, TechnologyNode};
use sop_workloads::{Workload, WorkloadProfile};

/// A core/cache/interconnect organization to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// Number of cores sharing the LLC.
    pub cores: u32,
    /// Total LLC capacity in MB.
    pub llc_mb: f64,
    /// Interconnect between cores and LLC banks.
    pub interconnect: Interconnect,
    /// Number of LLC banks. Tiled designs have one bank per tile; UCA
    /// crossbar designs one bank per four cores (Table 3.1).
    pub llc_banks: u32,
    /// Whether R-NUCA-style instruction replication is enabled
    /// (the "LLC-optimal tiled with IR" designs of §2.2.3).
    pub instruction_replication: bool,
    /// Technology node (sets the memory latency).
    pub node: TechnologyNode,
    /// Overrides the die area the crossbar's wires span, in mm². 3D
    /// stacks set this to the per-die footprint: the vertical distance
    /// between dies is negligible (§6.1), so only the planar span counts.
    pub crossbar_span_area_mm2: Option<f64>,
}

impl DesignPoint {
    /// A design point with the thesis' default banking rules and no
    /// instruction replication at 40nm.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `llc_mb` is not positive.
    pub fn new(core_kind: CoreKind, cores: u32, llc_mb: f64, interconnect: Interconnect) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(llc_mb > 0.0, "LLC capacity must be positive");
        let llc_banks = match interconnect {
            // Table 3.1: UCA, one bank per four cores.
            Interconnect::Ideal | Interconnect::Crossbar => cores.div_ceil(4),
            // NUCA, one bank (slice) per tile.
            Interconnect::Mesh | Interconnect::FlattenedButterfly => cores,
            // NOC-Out: two banks per LLC tile, one tile per eight cores
            // (Table 4.1's 16 banks for 64 cores).
            Interconnect::NocOut => (cores / 4).max(1),
        };
        DesignPoint {
            core_kind,
            cores,
            llc_mb,
            interconnect,
            llc_banks,
            instruction_replication: false,
            node: TechnologyNode::N40,
            crossbar_span_area_mm2: None,
        }
    }

    /// Returns a copy whose crossbar wires span `area_mm2` of silicon
    /// (per-die footprint for 3D stacks).
    pub fn with_crossbar_span_area(mut self, area_mm2: f64) -> Self {
        assert!(area_mm2 > 0.0, "span area must be positive");
        self.crossbar_span_area_mm2 = Some(area_mm2);
        self
    }

    /// Returns a copy with instruction replication enabled.
    pub fn with_instruction_replication(mut self) -> Self {
        self.instruction_replication = true;
        self
    }

    /// Returns a copy at a different technology node.
    pub fn at_node(mut self, node: TechnologyNode) -> Self {
        self.node = node;
        self
    }

    /// Returns a copy with an explicit bank count.
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        self.llc_banks = banks;
        self
    }

    /// Evaluates the model for one workload.
    pub fn evaluate(&self, workload: Workload) -> PerfEstimate {
        self.evaluate_profile(&WorkloadProfile::of(workload))
    }

    /// Evaluates the model for an explicit (possibly customised) profile.
    pub fn evaluate_profile(&self, profile: &WorkloadProfile) -> PerfEstimate {
        let kind = self.core_kind;
        let geometry = CacheGeometry::new();
        let bank_mb = self.llc_mb / f64::from(self.llc_banks);
        let l_bank = f64::from(geometry.bank_latency_cycles(bank_mb));
        // Crossbars pay wire propagation across the physical span of the
        // pod on top of arbitration (§3.2.2's distance argument): the span
        // is the square root of the compute area, and signals cover
        // ~4mm/cycle at 40nm — both halving together under scaling, so the
        // wire term is node-invariant for a fixed organization (§2.5.2).
        let l_net = self.interconnect.round_trip_cycles(self.cores)
            + if self.interconnect == Interconnect::Crossbar {
                let area = self.crossbar_span_area_mm2.unwrap_or_else(|| {
                    kind.area_mm2(self.node) * f64::from(self.cores)
                        + LlcParams::at(self.node).area_mm2(self.llc_mb)
                });
                let mm_per_cycle = 4.0 * self.node.feature_nm() / 40.0;
                2.0 * area.sqrt() / mm_per_cycle
            } else {
                0.0
            };
        let l_mem = f64::from(self.node.memory_latency_cycles());

        let compute = 1.0 / profile.ipc_infinite_for(kind);

        let (l1i, l1d) = profile.l1_mpki_for(kind);
        let data_mlp = profile.data_mlp_for(kind);
        // Instruction replication pins instruction blocks one hop away
        // (§2.2.3): instruction fetches pay a single mesh hop each way
        // instead of the full network distance.
        let l_net_instr = if self.instruction_replication {
            6.0
        } else {
            l_net
        };
        let llc_time =
            l1i / 1000.0 * (l_bank + l_net_instr) + l1d / 1000.0 / data_mlp * (l_bank + l_net);

        // Replication consumes LLC capacity: the shared working set
        // competes with its own replicas, shrinking effective capacity.
        let effective_mb = if self.instruction_replication {
            let replicas = (f64::from(self.cores) / 4.0).clamp(1.0, 4.0);
            let shared_share = 0.5; // instructions+OS as a fraction of live content
            self.llc_mb / (1.0 + shared_share * (replicas - 1.0) * 0.15)
        } else {
            self.llc_mb
        };
        let mpki = profile
            .miss_curve
            .misses_per_kilo_instr(effective_mb, self.cores);
        let mem_time = mpki / 1000.0 / profile.mem_mlp_for(kind) * (l_net + l_mem);

        let total = compute + llc_time + mem_time;
        PerfEstimate {
            per_core_ipc: 1.0 / total,
            breakdown: PerfBreakdown {
                compute_cpi: compute,
                llc_cpi: llc_time,
                memory_cpi: mem_time,
                llc_miss_mpki: mpki,
                llc_round_trip_cycles: l_bank + l_net,
            },
        }
    }

    /// Mean per-core application IPC across all seven workloads — the
    /// quantity the thesis averages for its performance-density figures.
    pub fn mean_per_core_ipc(&self) -> f64 {
        let profiles = WorkloadProfile::all();
        profiles
            .iter()
            .map(|p| self.evaluate_profile(p).per_core_ipc)
            .sum::<f64>()
            / profiles.len() as f64
    }

    /// Aggregate application instructions per cycle for the whole design
    /// (per-core IPC times core count), averaged across workloads.
    pub fn mean_aggregate_ipc(&self) -> f64 {
        self.mean_per_core_ipc() * f64::from(self.cores)
    }

    /// Worst-case off-chip bandwidth demand across the workloads, in GB/s,
    /// at this design's achieved per-workload throughput — the quantity
    /// the thesis provisions memory channels against (§2.5).
    pub fn worst_case_bandwidth_gbps(&self) -> f64 {
        let ghz = self.node.frequency_ghz();
        let mut traffic_mult = if self.instruction_replication {
            1.35
        } else {
            1.0
        };
        // Blocking in-order pipelines coalesce fewer stores and expose
        // more fetch traffic per instruction than the OoO cores the
        // profiles were measured on.
        if self.core_kind == CoreKind::InOrder {
            traffic_mult *= 1.3;
        }
        WorkloadProfile::all()
            .iter()
            .map(|p| {
                let ipc = self.evaluate_profile(p).per_core_ipc;
                p.traffic.bandwidth_gbps(self.llc_mb, self.cores, ipc, ghz) * traffic_mult
            })
            .fold(0.0, f64::max)
    }
}

/// The model's output for one (design, workload) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Application instructions committed per cycle per core.
    pub per_core_ipc: f64,
    /// Where the cycles go.
    pub breakdown: PerfBreakdown,
}

/// Cycles-per-instruction decomposition of [`PerfEstimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfBreakdown {
    /// Compute (L1-resident) time per instruction.
    pub compute_cpi: f64,
    /// Serialized LLC access time per instruction.
    pub llc_cpi: f64,
    /// Off-chip memory time per instruction.
    pub memory_cpi: f64,
    /// LLC misses per kilo-instruction at this capacity and sharing.
    pub llc_miss_mpki: f64,
    /// End-to-end LLC access latency (bank + network round trip).
    pub llc_round_trip_cycles: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(cores: u32, mb: f64, ic: Interconnect) -> PerfEstimate {
        DesignPoint::new(CoreKind::OutOfOrder, cores, mb, ic).evaluate(Workload::WebSearch)
    }

    #[test]
    fn bigger_cache_helps_until_latency_dominates() {
        // Fig 2.2 shape: performance rises from 1MB to the 4-8MB knee ...
        let p1 = ws(4, 1.0, Interconnect::Ideal).per_core_ipc;
        let p8 = ws(4, 8.0, Interconnect::Ideal).per_core_ipc;
        assert!(p8 > p1);
        // ... and a 32MB cache is no better (slower banks, no more reuse).
        let p32 = ws(4, 32.0, Interconnect::Ideal).per_core_ipc;
        assert!(p32 <= p8 * 1.01);
    }

    #[test]
    fn mesh_latency_erodes_per_core_perf() {
        // Fig 2.3a: under a realistic interconnect per-core performance
        // falls much faster with core count than under an ideal one.
        let ideal_drop = ws(256, 4.0, Interconnect::Ideal).per_core_ipc
            / ws(2, 4.0, Interconnect::Ideal).per_core_ipc;
        let mesh_drop = ws(256, 4.0, Interconnect::Mesh).per_core_ipc
            / ws(2, 4.0, Interconnect::Mesh).per_core_ipc;
        assert!(mesh_drop < ideal_drop);
        assert!(
            ideal_drop > 0.70,
            "ideal sharing penalty should be small: {ideal_drop}"
        );
    }

    #[test]
    fn aggregate_perf_scales_with_cores_under_ideal_network() {
        // Fig 2.3b: 256 cores on an ideal fabric deliver roughly 200x+ the
        // single-core throughput.
        let agg1 = ws(1, 4.0, Interconnect::Ideal).per_core_ipc;
        let agg256 = 256.0 * ws(256, 4.0, Interconnect::Ideal).per_core_ipc;
        let speedup = agg256 / agg1;
        assert!(speedup > 180.0, "got {speedup}");
    }

    #[test]
    fn instruction_replication_helps_meshes() {
        let base = DesignPoint::new(CoreKind::OutOfOrder, 32, 8.0, Interconnect::Mesh);
        let ir = base.with_instruction_replication();
        let w = Workload::WebFrontend; // biggest instruction footprint
        assert!(ir.evaluate(w).per_core_ipc > base.evaluate(w).per_core_ipc);
    }

    #[test]
    fn instruction_replication_costs_bandwidth() {
        let base = DesignPoint::new(CoreKind::OutOfOrder, 32, 8.0, Interconnect::Mesh);
        let ir = base.with_instruction_replication();
        assert!(ir.worst_case_bandwidth_gbps() > base.worst_case_bandwidth_gbps());
    }

    #[test]
    fn in_order_cores_are_slower_per_core() {
        let ooo = DesignPoint::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar);
        let io = DesignPoint::new(CoreKind::InOrder, 16, 4.0, Interconnect::Crossbar);
        assert!(io.mean_per_core_ipc() < ooo.mean_per_core_ipc());
    }

    #[test]
    fn conventional_core_gains_are_modest() {
        // §2.5.3: aggressive cores provide only a small performance gain
        // over the 3-wide OoO core on scale-out workloads.
        let ooo = DesignPoint::new(CoreKind::OutOfOrder, 4, 4.0, Interconnect::Crossbar);
        let conv = DesignPoint::new(CoreKind::Conventional, 4, 4.0, Interconnect::Crossbar);
        let ratio = conv.mean_per_core_ipc() / ooo.mean_per_core_ipc();
        assert!(ratio > 1.0 && ratio < 1.6, "got {ratio}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let est = ws(16, 4.0, Interconnect::Crossbar);
        let b = est.breakdown;
        let total = b.compute_cpi + b.llc_cpi + b.memory_cpi;
        assert!((1.0 / est.per_core_ipc - total).abs() < 1e-12);
    }

    #[test]
    fn ooo_bank_count_follows_table_3_1() {
        let uca = DesignPoint::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar);
        assert_eq!(uca.llc_banks, 4);
        let nuca = DesignPoint::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Mesh);
        assert_eq!(nuca.llc_banks, 16);
        let nocout = DesignPoint::new(CoreKind::OutOfOrder, 64, 8.0, Interconnect::NocOut);
        assert_eq!(nocout.llc_banks, 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_llc_panics() {
        DesignPoint::new(CoreKind::OutOfOrder, 4, 0.0, Interconnect::Ideal);
    }
}
