//! Design-space sweep helpers for the chapter 2/3 figures.
//!
//! Each sweep evaluates independent design points, so the `*_on`
//! variants fan the points out over an [`Exec`]'s worker pool; results
//! come back in sweep order regardless of scheduling. The plain
//! functions keep their historical sequential signatures and delegate.

use crate::interconnect::Interconnect;
use crate::perf::DesignPoint;
use sop_exec::Exec;
use sop_tech::CoreKind;
use sop_workloads::{Workload, WorkloadProfile};

/// One evaluated point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Core count at this point.
    pub cores: u32,
    /// LLC capacity in MB at this point.
    pub llc_mb: f64,
    /// Per-core application IPC (averaged across workloads unless the
    /// sweep was per-workload).
    pub per_core_ipc: f64,
}

impl SweepPoint {
    /// Aggregate IPC of the whole design at this point.
    pub fn aggregate_ipc(&self) -> f64 {
        self.per_core_ipc * f64::from(self.cores)
    }
}

/// Sweeps LLC capacity for a fixed core count (the Fig 2.2 experiment),
/// returning one point per capacity for the given workload.
pub fn capacity_sweep(
    kind: CoreKind,
    cores: u32,
    capacities_mb: &[f64],
    interconnect: Interconnect,
    workload: Workload,
) -> Vec<SweepPoint> {
    capacity_sweep_on(
        &Exec::sequential(),
        kind,
        cores,
        capacities_mb,
        interconnect,
        workload,
    )
}

/// [`capacity_sweep`] with the points evaluated on `exec`'s workers.
pub fn capacity_sweep_on(
    exec: &Exec,
    kind: CoreKind,
    cores: u32,
    capacities_mb: &[f64],
    interconnect: Interconnect,
    workload: Workload,
) -> Vec<SweepPoint> {
    exec.map(capacities_mb.to_vec(), |mb| SweepPoint {
        cores,
        llc_mb: mb,
        per_core_ipc: DesignPoint::new(kind, cores, mb, interconnect)
            .evaluate(workload)
            .per_core_ipc,
    })
}

/// Sweeps core count for a fixed LLC capacity (the Fig 2.3 / Fig 3.4
/// experiments), averaging across all workloads.
pub fn core_count_sweep(
    kind: CoreKind,
    core_counts: &[u32],
    llc_mb: f64,
    interconnect: Interconnect,
) -> Vec<SweepPoint> {
    core_count_sweep_on(&Exec::sequential(), kind, core_counts, llc_mb, interconnect)
}

/// [`core_count_sweep`] with the points evaluated on `exec`'s workers.
pub fn core_count_sweep_on(
    exec: &Exec,
    kind: CoreKind,
    core_counts: &[u32],
    llc_mb: f64,
    interconnect: Interconnect,
) -> Vec<SweepPoint> {
    exec.map(core_counts.to_vec(), |n| SweepPoint {
        cores: n,
        llc_mb,
        per_core_ipc: DesignPoint::new(kind, n, llc_mb, interconnect).mean_per_core_ipc(),
    })
}

/// Per-core IPC of a design averaged over an explicit workload subset
/// (used when a workload does not scale to the design's core count).
pub fn average_per_core_ipc(design: &DesignPoint, workloads: &[Workload]) -> f64 {
    assert!(!workloads.is_empty(), "need at least one workload");
    workloads
        .iter()
        .map(|&w| {
            design
                .evaluate_profile(&WorkloadProfile::of(w))
                .per_core_ipc
        })
        .sum::<f64>()
        / workloads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_sweep_covers_requested_points() {
        let pts = capacity_sweep(
            CoreKind::OutOfOrder,
            4,
            &[1.0, 2.0, 4.0],
            Interconnect::Crossbar,
            Workload::WebSearch,
        );
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].llc_mb, 1.0);
        assert_eq!(pts[2].llc_mb, 4.0);
    }

    #[test]
    fn core_sweep_aggregate_grows_with_cores() {
        let pts = core_count_sweep(
            CoreKind::OutOfOrder,
            &[1, 4, 16, 64],
            4.0,
            Interconnect::Ideal,
        );
        for pair in pts.windows(2) {
            assert!(pair[1].aggregate_ipc() > pair[0].aggregate_ipc());
        }
    }

    #[test]
    fn per_core_ipc_falls_with_cores_on_mesh() {
        let pts = core_count_sweep(CoreKind::OutOfOrder, &[4, 16, 64], 4.0, Interconnect::Mesh);
        for pair in pts.windows(2) {
            assert!(pair[1].per_core_ipc < pair[0].per_core_ipc);
        }
    }

    #[test]
    fn subset_average_matches_single_workload() {
        let d = DesignPoint::new(CoreKind::InOrder, 8, 2.0, Interconnect::Crossbar);
        let one = average_per_core_ipc(&d, &[Workload::SatSolver]);
        assert!((one - d.evaluate(Workload::SatSolver).per_core_ipc).abs() < 1e-12);
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let caps = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let seq = capacity_sweep(
            CoreKind::OutOfOrder,
            16,
            &caps,
            Interconnect::Crossbar,
            Workload::WebSearch,
        );
        let par = capacity_sweep_on(
            &Exec::with_workers(8),
            CoreKind::OutOfOrder,
            16,
            &caps,
            Interconnect::Crossbar,
            Workload::WebSearch,
        );
        assert_eq!(seq, par);
        let counts = [1, 2, 4, 8, 16, 32, 64, 128];
        let seq = core_count_sweep(CoreKind::InOrder, &counts, 4.0, Interconnect::Mesh);
        let par = core_count_sweep_on(
            &Exec::with_workers(8),
            CoreKind::InOrder,
            &counts,
            4.0,
            Interconnect::Mesh,
        );
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_subset_panics() {
        let d = DesignPoint::new(CoreKind::InOrder, 8, 2.0, Interconnect::Crossbar);
        average_per_core_ipc(&d, &[]);
    }
}
