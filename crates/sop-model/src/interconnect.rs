//! Interconnect latency models (Table 3.1).
//!
//! The analytic model abstracts each on-chip network to the *round-trip*
//! latency it adds to an LLC access (request plus response, beyond the bank
//! access itself):
//!
//! * **Ideal** — a fixed 4-cycle interconnect, independent of scale. This
//!   is the thesis' upper bound ("ideal processor").
//! * **Crossbar** — the dancehall fabric of conventional processors and
//!   pods. Table 3.1: 4 cycles up to 8 cores, then 5/7/11 cycles at
//!   16/32/64 cores; we extrapolate the same arbitration-depth growth.
//! * **Mesh** — the tiled fabric: 3 cycles per hop (router + channel),
//!   charged for the average request path and the response path.
//! * **NocOut** — the chapter-4 organization: single-cycle reduction and
//!   dispersion tree hops into a central LLC row joined by a one-row
//!   flattened butterfly.
//! * **FlattenedButterfly** — rich point-to-point connectivity: at most two
//!   hops through 3-stage routers.

/// The on-chip network joining cores to LLC banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interconnect {
    /// Fixed 4-cycle fabric regardless of scale (the "ideal" bound).
    Ideal,
    /// Dancehall crossbar whose arbitration deepens with port count.
    Crossbar,
    /// Tiled 2-D mesh, 3 cycles/hop.
    Mesh,
    /// Two-hop richly connected topology with 3-stage routers.
    FlattenedButterfly,
    /// NOC-Out reduction/dispersion trees plus an LLC-row butterfly.
    NocOut,
}

impl Interconnect {
    /// The interconnects compared in chapter 3's pod derivation.
    pub const POD_CANDIDATES: [Interconnect; 3] = [
        Interconnect::Ideal,
        Interconnect::Crossbar,
        Interconnect::Mesh,
    ];

    /// Round-trip cycles a core pays to reach the LLC and get the response
    /// back, excluding the bank access itself, in a design with `cores`
    /// cores. For tiled fabrics the tile count equals the core count.
    pub fn round_trip_cycles(self, cores: u32) -> f64 {
        assert!(cores > 0, "need at least one core");
        match self {
            Interconnect::Ideal => 4.0,
            Interconnect::Crossbar => {
                // Table 3.1: 4 cycles through 8 cores; +arbitration depth
                // beyond (5 at 16, 7 at 32, 11 at 64, extrapolating the
                // same growth). Wire propagation across the pod's span is
                // charged separately by the performance model.
                let ports = f64::from(cores);
                3.0 + (ports / 8.0).ceil().max(1.0)
            }
            Interconnect::Mesh => {
                let (w, h) = grid_dims(cores);
                // Request hops plus response hops at 3 cycles/hop; the
                // response partially overlaps the next access's request
                // under non-unit MLP, so it is charged at 70%.
                (1.0 + 0.7) * mean_grid_distance(w, h) * 3.0
            }
            Interconnect::FlattenedButterfly => {
                // At most one hop per dimension: a random destination needs
                // the X hop with probability (1 - 1/w) and likewise in Y.
                // Each hop costs a 3-stage router plus link flight; add one
                // ejection cycle per direction.
                let (w, h) = grid_dims(cores);
                let hops = (1.0 - 1.0 / f64::from(w)) + (1.0 - 1.0 / f64::from(h));
                2.0 * (hops * 4.0 + 1.0)
            }
            Interconnect::NocOut => {
                // Cores stack in half-columns above and below the LLC row;
                // one LLC tile per 8 cores (each tile serving a column of 4
                // above and 4 below, Table 4.1 geometry). Tree hops cost a
                // single cycle; the LLC-row butterfly adds a router.
                let half_column = (f64::from(cores) / 16.0).max(1.0).ceil();
                let mean_depth = (half_column + 1.0) / 2.0;
                2.0 * mean_depth + 6.0
            }
        }
    }

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Interconnect::Ideal => "Ideal",
            Interconnect::Crossbar => "Crossbar",
            Interconnect::Mesh => "Mesh",
            Interconnect::FlattenedButterfly => "Flattened Butterfly",
            Interconnect::NocOut => "NOC-Out",
        }
    }
}

impl std::fmt::Display for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The most square grid of at least `tiles` positions with aspect ratio at
/// most 2:1 — the thesis' "regular grid topology with a reasonable aspect
/// ratio" (§2.5.1). Returns `(width, height)` with `width >= height`.
pub fn grid_dims(tiles: u32) -> (u32, u32) {
    assert!(tiles > 0, "need at least one tile");
    let mut best = (tiles, 1);
    let mut best_cost = u32::MAX;
    let root = (tiles as f64).sqrt().ceil() as u32;
    for h in 1..=root {
        let w = tiles.div_ceil(h);
        if w < h {
            continue;
        }
        // Prefer exact, near-square factorizations.
        let waste = w * h - tiles;
        let cost = (w - h) + 4 * waste;
        if cost < best_cost {
            best_cost = cost;
            best = (w, h);
        }
    }
    best
}

/// Mean Manhattan distance between two uniformly random positions of a
/// `w x h` grid: `(w^2-1)/(3w) + (h^2-1)/(3h)`.
pub fn mean_grid_distance(w: u32, h: u32) -> f64 {
    let axis = |k: u32| {
        let k = f64::from(k);
        (k * k - 1.0) / (3.0 * k)
    };
    axis(w) + axis(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_matches_table_3_1() {
        for n in [1, 2, 4, 8] {
            assert_eq!(Interconnect::Crossbar.round_trip_cycles(n), 4.0);
        }
        assert_eq!(Interconnect::Crossbar.round_trip_cycles(16), 5.0);
        assert_eq!(Interconnect::Crossbar.round_trip_cycles(32), 7.0);
        assert_eq!(Interconnect::Crossbar.round_trip_cycles(64), 11.0);
    }

    #[test]
    fn ideal_is_flat() {
        assert_eq!(Interconnect::Ideal.round_trip_cycles(1), 4.0);
        assert_eq!(Interconnect::Ideal.round_trip_cycles(256), 4.0);
    }

    #[test]
    fn mesh_grows_with_core_count() {
        let m16 = Interconnect::Mesh.round_trip_cycles(16);
        let m64 = Interconnect::Mesh.round_trip_cycles(64);
        let m256 = Interconnect::Mesh.round_trip_cycles(256);
        assert!(m16 < m64 && m64 < m256);
        // 8x8 grid: mean distance 5.25, round trip 1.7 x 5.25 x 3 cycles.
        assert!((m64 - 26.775).abs() < 1e-9, "got {m64}");
    }

    #[test]
    fn fbfly_beats_mesh_at_scale() {
        // At 16 tiles the mesh is genuinely competitive (short paths, no
        // deep routers); the butterfly's advantage appears at scale.
        for n in [64, 128, 256] {
            assert!(
                Interconnect::FlattenedButterfly.round_trip_cycles(n)
                    < Interconnect::Mesh.round_trip_cycles(n)
            );
        }
    }

    #[test]
    fn nocout_tracks_fbfly_at_64_cores() {
        // §4.4.1: NOC-Out matches the flattened butterfly's performance.
        let no = Interconnect::NocOut.round_trip_cycles(64);
        let fb = Interconnect::FlattenedButterfly.round_trip_cycles(64);
        assert!((no - fb).abs() <= 6.0, "NOC-Out {no} vs FBfly {fb}");
    }

    #[test]
    fn grid_dims_are_reasonable() {
        assert_eq!(grid_dims(64), (8, 8));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(20), (5, 4));
        assert_eq!(grid_dims(32), (8, 4));
        assert_eq!(grid_dims(96), (12, 8));
        let (w, h) = grid_dims(13);
        assert!(w * h >= 13);
    }

    #[test]
    fn mean_distance_of_unit_grid_is_zero() {
        assert_eq!(mean_grid_distance(1, 1), 0.0);
    }

    #[test]
    fn mean_distance_matches_closed_form_small_case() {
        // 2x1 grid: pairs (0,0),(0,1),(1,0),(1,1) -> mean |dx| = 0.5.
        assert!((mean_grid_distance(2, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cores_panics() {
        Interconnect::Mesh.round_trip_cycles(0);
    }
}
