//! Error statistics for model-versus-simulation comparison (Fig 3.3's
//! quantitative backbone).
//!
//! §3.4.1 reports the model "predicts performance with excellent accuracy
//! up to 16 cores" — this module turns such statements into numbers:
//! mean/max absolute relative error and signed bias over a series of
//! (modelled, measured) pairs.

/// Accumulates paired observations and reports error statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorStats {
    pairs: Vec<(f64, f64)>,
}

impl ErrorStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        ErrorStats::default()
    }

    /// Records a (modelled, measured) pair.
    ///
    /// # Panics
    ///
    /// Panics if `measured` is not positive (relative error undefined).
    pub fn record(&mut self, modelled: f64, measured: f64) {
        assert!(measured > 0.0, "measured value must be positive");
        self.pairs.push((modelled, measured));
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Mean absolute relative error, `mean(|model - sim| / sim)`.
    ///
    /// # Panics
    ///
    /// Panics if no pairs were recorded.
    pub fn mean_abs_error(&self) -> f64 {
        assert!(!self.is_empty(), "no observations recorded");
        self.pairs
            .iter()
            .map(|(m, s)| ((m - s) / s).abs())
            .sum::<f64>()
            / self.pairs.len() as f64
    }

    /// Largest absolute relative error.
    pub fn max_abs_error(&self) -> f64 {
        assert!(!self.is_empty(), "no observations recorded");
        self.pairs
            .iter()
            .map(|(m, s)| ((m - s) / s).abs())
            .fold(0.0, f64::max)
    }

    /// Signed bias, `mean((model - sim) / sim)`: positive when the model
    /// is optimistic.
    pub fn bias(&self) -> f64 {
        assert!(!self.is_empty(), "no observations recorded");
        self.pairs.iter().map(|(m, s)| (m - s) / s).sum::<f64>() / self.pairs.len() as f64
    }

    /// Pearson correlation between modelled and measured series — shape
    /// agreement independent of scale offsets.
    pub fn correlation(&self) -> f64 {
        assert!(self.pairs.len() >= 2, "correlation needs two pairs");
        let n = self.pairs.len() as f64;
        let (mx, my) = (
            self.pairs.iter().map(|p| p.0).sum::<f64>() / n,
            self.pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for &(x, y) in &self.pairs {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        if vx == 0.0 || vy == 0.0 {
            return 0.0;
        }
        cov / (vx.sqrt() * vy.sqrt())
    }
}

impl Extend<(f64, f64)> for ErrorStats {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (m, s) in iter {
            self.record(m, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_agreement_has_zero_error() {
        let mut e = ErrorStats::new();
        e.extend([(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(e.mean_abs_error(), 0.0);
        assert_eq!(e.bias(), 0.0);
        assert!((e.correlation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimistic_model_has_positive_bias() {
        let mut e = ErrorStats::new();
        e.extend([(1.2, 1.0), (2.4, 2.0)]);
        assert!((e.bias() - 0.2).abs() < 1e-12);
        assert!((e.mean_abs_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn max_error_dominates_mean() {
        let mut e = ErrorStats::new();
        e.extend([(1.0, 1.0), (1.5, 1.0)]);
        assert!((e.max_abs_error() - 0.5).abs() < 1e-12);
        assert!((e.mean_abs_error() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn correlation_captures_shape_despite_offset() {
        let mut e = ErrorStats::new();
        // Model is 30% optimistic everywhere: perfect shape agreement.
        e.extend([(1.3, 1.0), (2.6, 2.0), (3.9, 3.0)]);
        assert!((e.correlation() - 1.0).abs() < 1e-12);
        assert!(e.bias() > 0.29);
    }

    #[test]
    fn anticorrelated_series_is_detected() {
        let mut e = ErrorStats::new();
        e.extend([(3.0, 1.0), (2.0, 2.0), (1.0, 3.0)]);
        assert!(e.correlation() < -0.99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_measurement_panics() {
        ErrorStats::new().record(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_stats_panic() {
        ErrorStats::new().mean_abs_error();
    }
}
