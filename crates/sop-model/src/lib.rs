//! Analytic performance model for scale-out server chips.
//!
//! The thesis drives its design-space exploration with an analytic model
//! (§2.4.3, §3.3, citing Hardavellas et al.) that extends classical
//! average-memory-access-time analysis: per-core performance is the
//! reciprocal of the time per application instruction, which is the sum of
//! a compute term, a serialized LLC-access term, and a memory term — each
//! parameterised by the workload statistics of [`sop_workloads`] and the
//! physical constants of [`sop_tech`]. The model is validated against the
//! cycle-level simulator in the Fig 3.3 experiment (see `sop-sim` and the
//! `repro fig3.3` harness).
//!
//! # Example
//!
//! ```
//! use sop_model::{DesignPoint, Interconnect};
//! use sop_tech::CoreKind;
//! use sop_workloads::Workload;
//!
//! // A 16-core pod with a 4MB crossbar-connected LLC (the thesis' chosen
//! // OoO pod) outperforms per-core a 64-tile mesh with the same cache.
//! let pod = DesignPoint::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar)
//!     .evaluate(Workload::WebSearch);
//! let tiled = DesignPoint::new(CoreKind::OutOfOrder, 64, 4.0, Interconnect::Mesh)
//!     .evaluate(Workload::WebSearch);
//! assert!(pod.per_core_ipc > tiled.per_core_ipc);
//! ```

pub mod interconnect;
pub mod perf;
pub mod sweep;
pub mod validation;

pub use interconnect::{grid_dims, Interconnect};
pub use perf::{DesignPoint, PerfBreakdown, PerfEstimate};
pub use sweep::{
    average_per_core_ipc, capacity_sweep, capacity_sweep_on, core_count_sweep, core_count_sweep_on,
    SweepPoint,
};
pub use validation::ErrorStats;
