//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the slice of the criterion 0.5 API the workspace's
//! benches use: `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`finish`, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then a fixed
//! number of timed samples, reporting min/median/max wall-clock time per
//! iteration. No statistical analysis, plotting, or HTML output.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the shim times the routine
/// in isolation regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; one per batch here.
    SmallInput,
    /// Large inputs: few per batch upstream; one per batch here.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times a closure over the samples the harness requests.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Per-iteration wall-clock durations collected by `iter`-family calls.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn report(name: &str, recorded: &[Duration]) {
    if recorded.is_empty() {
        println!("{name:40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = recorded.to_vec();
    sorted.sort();
    let fmt = |d: Duration| {
        let ns = d.as_nanos();
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} us", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    };
    println!(
        "{name:40} time: [{} {} {}]",
        fmt(sorted[0]),
        fmt(sorted[sorted.len() / 2]),
        fmt(*sorted.last().expect("non-empty"))
    );
}

/// The bench harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(name, &b.recorded);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, R: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(&format!("{}/{}", self.name, name), &b.recorded);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(4);
        b.iter(|| 1 + 1);
        assert_eq!(b.recorded.len(), 4);
        let mut b = Bencher::new(3);
        b.iter_batched(|| 5, |x| x * 2, BatchSize::PerIteration);
        assert_eq!(b.recorded.len(), 3);
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 2);
    }
}
