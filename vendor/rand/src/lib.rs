//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the small slice of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic, fast, and statistically solid for simulation traces.
//! Streams differ from upstream `rand`'s, which is fine: every consumer
//! in this workspace treats the stream as an arbitrary deterministic
//! function of the seed.

/// Types that can be drawn uniformly from their full domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `next`, a uniform `u64` source.
    fn from_u64_source<F: FnMut() -> u64>(next: F) -> Self;
}

impl Standard for f64 {
    fn from_u64_source<F: FnMut() -> u64>(mut next: F) -> Self {
        // 53 random mantissa bits in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_u64_source<F: FnMut() -> u64>(mut next: F) -> Self {
        next()
    }
}

impl Standard for u32 {
    fn from_u64_source<F: FnMut() -> u64>(mut next: F) -> Self {
        (next() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64_source<F: FnMut() -> u64>(mut next: F) -> Self {
        next() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[lo, hi)` from a uniform `u64` source.
    fn sample_range<F: FnMut() -> u64>(lo: Self, hi: Self, next: F) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<F: FnMut() -> u64>(lo: Self, hi: Self, mut next: F) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Rejection-free multiply-shift mapping; the bias is
                // < 2^-64 per draw, negligible for simulation purposes.
                let x = next() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<F: FnMut() -> u64>(lo: Self, hi: Self, next: F) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::from_u64_source(next) * (hi - lo)
    }
}

/// The subset of rand 0.8's `Rng` trait this workspace uses.
pub trait Rng {
    /// Next raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of `T` over its natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64_source(|| self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Draws a uniform value from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, || self.next_u64())
    }
}

/// The subset of rand 0.8's `SeedableRng` trait this workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = r.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
    }
}
