//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the slice of the proptest 1.x API the workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range and tuple strategies, `prop::sample::select`,
//! `prop::collection::vec`, and `prop::bool::ANY`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test stream (seeded from the test's name), there is no shrinking,
//! and a failing case panics with the generated values unreduced. Those
//! are acceptable trade-offs for a hermetic, dependency-free build.

use std::ops::Range;

/// Harness configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case's preconditions do not
/// hold; the harness skips the case and moves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCaseSkip;

/// Deterministic input stream for one property test (SplitMix64 seeded
/// from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the stream for the named test. Identical names always
    /// replay identical inputs, so failures are reproducible.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

pub mod prop {
    //! Strategy constructors, mirroring proptest's `prop` module tree.

    pub mod sample {
        //! Sampling from explicit value lists.

        use crate::{Strategy, TestRng};

        /// Uniform choice among a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Draws uniformly from `items`.
        ///
        /// # Panics
        ///
        /// Panics (at sample time) if `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.items.is_empty(), "select over an empty list");
                let i = (rng.next_u64() % self.items.len() as u64) as usize;
                self.items[i].clone()
            }
        }
    }

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A vector of values from an element strategy, with length drawn
        /// from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `size.start..size.end` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::{Strategy, TestRng};

        /// Uniform `true`/`false`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // The closure gives `$body` a `?`-capturing scope (how
                // prop_assume! bails out of one case), so it must be
                // declared and called in place.
                #[allow(clippy::redundant_closure_call)]
                let _outcome = (|| -> ::core::result::Result<(), $crate::TestCaseSkip> {
                    $body
                    ::core::result::Result::Ok(())
                })();
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..10, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Tuples, vectors, selects, and booleans compose.
        #[test]
        fn composite_strategies(
            v in prop::collection::vec((0u32..4, prop::bool::ANY), 1..10),
            pick in prop::sample::select(vec![1i32, 3, 5]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (n, _flag) in &v {
                prop_assert!(*n < 4);
            }
            prop_assert!(pick == 1 || pick == 3 || pick == 5);
        }

        /// Assumptions skip cases without failing them.
        #[test]
        fn assumptions_skip(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
